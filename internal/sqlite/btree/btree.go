// Package btree implements the B+tree storage used for tables and
// indexes in the simulated SQLite engine: slotted pages over the pager,
// rowid-keyed table trees, byte-key index trees with a pluggable
// comparator, and overflow page chains for large payloads (the paper's
// Facebook trace stores thumbnail blobs, §6.3.2).
//
// Deletions do not rebalance: emptied leaves stay linked, as keeping
// the structure write-cheap is what the workload mix rewards and what
// the experiments' I/O shape depends on. Drop reclaims every page.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/sqlite/pager"
)

// Page types.
const (
	typeTableLeaf     = 1
	typeTableInterior = 2
	typeIndexLeaf     = 3
	typeIndexInterior = 4
	typeOverflow      = 5
)

// Page header layout (bytes).
const (
	offType     = 0
	offNCells   = 1 // u16
	offContent  = 3 // u16: start of cell content area (0 means page end)
	offFrag     = 5 // u16: fragmented free bytes
	offRight    = 7 // u32: right-most child (interior) / next leaf (leaf)
	hdrSize     = 12
	ptrSize     = 2
	ovflHdrSize = 11 // type(1) + next(4) + len(2) + pad(4)
)

// Errors.
var (
	ErrNotFound  = errors.New("btree: key not found")
	ErrCorrupt   = errors.New("btree: page corrupt")
	ErrTooLarge  = errors.New("btree: payload exceeds maximum size")
	ErrWrongKind = errors.New("btree: operation not valid for this tree kind")
)

// Kind distinguishes table trees (int64 rowid keys with payloads) from
// index trees (opaque byte keys).
type Kind int

// Tree kinds.
const (
	KindTable Kind = iota
	KindIndex
)

// Compare orders index keys. It must be a total order and must treat a
// prefix as less than any extension.
type Compare func(a, b []byte) int

// Tree is one B+tree rooted at a fixed page.
type Tree struct {
	pg   *pager.Pager
	root pager.Pgno
	kind Kind
	cmp  Compare
}

// CreateTable allocates an empty table tree and returns its root page.
// Must be called inside a pager transaction.
func CreateTable(p *pager.Pager) (pager.Pgno, error) { return create(p, typeTableLeaf) }

// CreateIndex allocates an empty index tree and returns its root page.
func CreateIndex(p *pager.Pager) (pager.Pgno, error) { return create(p, typeIndexLeaf) }

func create(p *pager.Pager, leafType byte) (pager.Pgno, error) {
	pg, err := p.Allocate()
	if err != nil {
		return 0, err
	}
	defer pg.Release()
	initPage(pg.Data(), leafType)
	return pg.Pgno(), nil
}

// OpenTable attaches to an existing table tree.
func OpenTable(p *pager.Pager, root pager.Pgno) *Tree {
	return &Tree{pg: p, root: root, kind: KindTable}
}

// OpenIndex attaches to an existing index tree with its key comparator.
func OpenIndex(p *pager.Pager, root pager.Pgno, cmp Compare) *Tree {
	if cmp == nil {
		cmp = bytes.Compare
	}
	return &Tree{pg: p, root: root, kind: KindIndex, cmp: cmp}
}

// Root returns the tree's root page number.
func (t *Tree) Root() pager.Pgno { return t.root }

func initPage(d []byte, pageType byte) {
	clear(d)
	d[offType] = pageType
	putU16(d, offNCells, 0)
	putU16(d, offContent, uint16(len(d)))
	putU16(d, offFrag, 0)
	putU32(d, offRight, 0)
}

func putU16(d []byte, off int, v uint16) { binary.BigEndian.PutUint16(d[off:], v) }
func getU16(d []byte, off int) uint16    { return binary.BigEndian.Uint16(d[off:]) }
func putU32(d []byte, off int, v uint32) { binary.BigEndian.PutUint32(d[off:], v) }
func getU32(d []byte, off int) uint32    { return binary.BigEndian.Uint32(d[off:]) }

func nCells(d []byte) int { return int(getU16(d, offNCells)) }
func cellPtr(d []byte, i int) int {
	return int(getU16(d, hdrSize+ptrSize*i))
}
func cellBytes(d []byte, i int) []byte { return d[cellPtr(d, i):] }
func isLeaf(d []byte) bool {
	return d[offType] == typeTableLeaf || d[offType] == typeIndexLeaf
}

// maxLocal is the largest payload stored fully inline; larger payloads
// keep minLocal bytes inline and spill the rest to overflow pages.
func maxLocal(pageSize int) int { return (pageSize - 64) / 4 }
func minLocal(pageSize int) int { return maxLocal(pageSize) / 4 }

// usableOverflow is the data capacity of one overflow page.
func usableOverflow(pageSize int) int { return pageSize - ovflHdrSize }

// ---- cell encoding ----
//
// Table leaf:      varint rowid, varint payloadLen, inline, [u32 ovfl]
// Table interior:  u32 leftChild, varint key
// Index leaf:      varint payloadLen, inline, [u32 ovfl]
// Index interior:  u32 leftChild, varint sepLen, sep bytes (seps are
//                  bounded copies of leaf keys and are never spilled)

// cell is a decoded cell.
type cell struct {
	rowid   int64      // table trees
	key     []byte     // index trees: full key (interior: separator)
	payload []byte     // table leaf: inline part
	total   int        // full payload length including overflow
	ovfl    pager.Pgno // first overflow page or 0
	child   pager.Pgno // interior cells
	raw     []byte     // encoded form
}

func uvarint(d []byte) (uint64, int) { return binary.Uvarint(d) }

func (t *Tree) parseCell(d []byte, i int) (cell, error) {
	b := cellBytes(d, i)
	var c cell
	switch d[offType] {
	case typeTableLeaf:
		rid, n1 := uvarint(b)
		total, n2 := uvarint(b[n1:])
		if n1 <= 0 || n2 <= 0 {
			return c, ErrCorrupt
		}
		c.rowid = int64(rid)
		c.total = int(total)
		inline := c.total
		if inline > maxLocal(len(d)) {
			inline = minLocal(len(d))
		}
		c.payload = b[n1+n2 : n1+n2+inline]
		end := n1 + n2 + inline
		if inline < c.total {
			c.ovfl = pager.Pgno(getU32(b, end))
			end += 4
		}
		c.raw = b[:end]
	case typeTableInterior:
		c.child = pager.Pgno(getU32(b, 0))
		rid, n := uvarint(b[4:])
		if n <= 0 {
			return c, ErrCorrupt
		}
		c.rowid = int64(rid)
		c.raw = b[:4+n]
	case typeIndexLeaf:
		total, n1 := uvarint(b)
		if n1 <= 0 {
			return c, ErrCorrupt
		}
		c.total = int(total)
		inline := c.total
		if inline > maxLocal(len(d)) {
			inline = minLocal(len(d))
		}
		c.key = b[n1 : n1+inline]
		end := n1 + inline
		if inline < c.total {
			c.ovfl = pager.Pgno(getU32(b, end))
			end += 4
		}
		c.raw = b[:end]
	case typeIndexInterior:
		c.child = pager.Pgno(getU32(b, 0))
		klen, n := uvarint(b[4:])
		if n <= 0 {
			return c, ErrCorrupt
		}
		c.key = b[4+n : 4+n+int(klen)]
		c.raw = b[:4+n+int(klen)]
	default:
		return c, fmt.Errorf("%w: type %d", ErrCorrupt, d[offType])
	}
	return c, nil
}

// encode produces the raw bytes of a cell for a page of the given type.
func encodeCell(pageType byte, c cell) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	switch pageType {
	case typeTableLeaf:
		n := binary.PutUvarint(tmp[:], uint64(c.rowid))
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(c.total))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, c.payload...)
		if c.ovfl != 0 {
			var o [4]byte
			binary.BigEndian.PutUint32(o[:], uint32(c.ovfl))
			buf = append(buf, o[:]...)
		}
	case typeTableInterior:
		var o [4]byte
		binary.BigEndian.PutUint32(o[:], uint32(c.child))
		buf = append(buf, o[:]...)
		n := binary.PutUvarint(tmp[:], uint64(c.rowid))
		buf = append(buf, tmp[:n]...)
	case typeIndexLeaf:
		n := binary.PutUvarint(tmp[:], uint64(c.total))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, c.key...)
		if c.ovfl != 0 {
			var o [4]byte
			binary.BigEndian.PutUint32(o[:], uint32(c.ovfl))
			buf = append(buf, o[:]...)
		}
	case typeIndexInterior:
		var o [4]byte
		binary.BigEndian.PutUint32(o[:], uint32(c.child))
		buf = append(buf, o[:]...)
		n := binary.PutUvarint(tmp[:], uint64(len(c.key)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, c.key...)
	}
	return buf
}

// freeSpace reports contiguous + fragmented free bytes in a page.
func freeSpace(d []byte) int {
	content := int(getU16(d, offContent))
	top := hdrSize + ptrSize*nCells(d)
	return content - top + int(getU16(d, offFrag))
}

// insertCellAt places raw cell bytes at slot i, defragmenting if the
// contiguous gap is too small. Returns false if the page cannot hold it.
func insertCellAt(d []byte, i int, raw []byte) bool {
	need := len(raw) + ptrSize
	if freeSpace(d) < need {
		return false
	}
	content := int(getU16(d, offContent))
	top := hdrSize + ptrSize*nCells(d)
	if content-top < need {
		defragment(d)
		content = int(getU16(d, offContent))
	}
	content -= len(raw)
	copy(d[content:], raw)
	// Shift pointer array.
	n := nCells(d)
	copy(d[hdrSize+ptrSize*(i+1):hdrSize+ptrSize*(n+1)], d[hdrSize+ptrSize*i:hdrSize+ptrSize*n])
	putU16(d, hdrSize+ptrSize*i, uint16(content))
	putU16(d, offNCells, uint16(n+1))
	putU16(d, offContent, uint16(content))
	return true
}

// removeCellAt drops slot i, leaving its content bytes fragmented.
func removeCellAt(d []byte, i int, rawLen int) {
	n := nCells(d)
	copy(d[hdrSize+ptrSize*i:hdrSize+ptrSize*(n-1)], d[hdrSize+ptrSize*(i+1):hdrSize+ptrSize*n])
	putU16(d, offNCells, uint16(n-1))
	putU16(d, offFrag, getU16(d, offFrag)+uint16(rawLen))
}

// defragment rewrites all cells contiguously at the page end.
func defragment(d []byte) {
	n := nCells(d)
	type slot struct {
		off, ln int
	}
	// Compute each cell's length by re-parsing is avoided: lengths are
	// recovered by copying cells into a scratch area first.
	scratch := make([]byte, len(d))
	copy(scratch, d)
	content := len(d)
	for i := 0; i < n; i++ {
		off := int(getU16(scratch, hdrSize+ptrSize*i))
		ln := cellLen(scratch, off)
		content -= ln
		copy(d[content:], scratch[off:off+ln])
		putU16(d, hdrSize+ptrSize*i, uint16(content))
	}
	putU16(d, offContent, uint16(content))
	putU16(d, offFrag, 0)
}

// cellLen computes the encoded length of the cell at a raw offset.
func cellLen(d []byte, off int) int {
	b := d[off:]
	switch d[offType] {
	case typeTableLeaf:
		_, n1 := uvarint(b)
		total, n2 := uvarint(b[n1:])
		inline := int(total)
		ln := n1 + n2
		if inline > maxLocal(len(d)) {
			inline = minLocal(len(d))
			ln += inline + 4
		} else {
			ln += inline
		}
		return ln
	case typeTableInterior:
		_, n := uvarint(b[4:])
		return 4 + n
	case typeIndexLeaf:
		total, n1 := uvarint(b)
		inline := int(total)
		ln := n1
		if inline > maxLocal(len(d)) {
			inline = minLocal(len(d))
			ln += inline + 4
		} else {
			ln += inline
		}
		return ln
	case typeIndexInterior:
		klen, n := uvarint(b[4:])
		return 4 + n + int(klen)
	default:
		return 0
	}
}

// ---- overflow chains ----

// writeOverflow spills data into a chain of overflow pages, returning
// the first page number.
func (t *Tree) writeOverflow(data []byte) (pager.Pgno, error) {
	if len(data) == 0 {
		return 0, nil
	}
	cap_ := usableOverflow(t.pg.PageSize())
	pg, err := t.pg.Allocate()
	if err != nil {
		return 0, err
	}
	first := pg.Pgno()
	for {
		d := pg.Data()
		clear(d)
		d[offType] = typeOverflow
		n := min(len(data), cap_)
		putU16(d, 5, uint16(n))
		copy(d[ovflHdrSize:], data[:n])
		data = data[n:]
		if len(data) == 0 {
			putU32(d, 1, 0)
			pg.Release()
			return first, nil
		}
		next, err := t.pg.Allocate()
		if err != nil {
			pg.Release()
			return 0, err
		}
		putU32(d, 1, uint32(next.Pgno()))
		pg.Release()
		pg = next
	}
}

// readOverflow appends a chain's contents to dst.
func (t *Tree) readOverflow(first pager.Pgno, dst []byte, want int) ([]byte, error) {
	for pgno := first; pgno != 0 && len(dst) < want; {
		pg, err := t.pg.Get(pgno)
		if err != nil {
			return nil, err
		}
		d := pg.Data()
		if d[offType] != typeOverflow {
			pg.Release()
			return nil, fmt.Errorf("%w: overflow chain", ErrCorrupt)
		}
		n := int(getU16(d, 5))
		dst = append(dst, d[ovflHdrSize:ovflHdrSize+n]...)
		pgno = pager.Pgno(getU32(d, 1))
		pg.Release()
	}
	return dst, nil
}

// freeOverflow releases a chain back to the pager.
func (t *Tree) freeOverflow(first pager.Pgno) error {
	for pgno := first; pgno != 0; {
		pg, err := t.pg.Get(pgno)
		if err != nil {
			return err
		}
		next := pager.Pgno(getU32(pg.Data(), 1))
		pg.Release()
		if err := t.pg.Free(pgno); err != nil {
			return err
		}
		pgno = next
	}
	return nil
}

// buildLeafCell prepares a leaf cell, spilling payload as needed.
func (t *Tree) buildLeafCell(pageType byte, rowid int64, key, payload []byte) (cell, error) {
	var full []byte
	if pageType == typeTableLeaf {
		full = payload
	} else {
		full = key
	}
	c := cell{rowid: rowid, total: len(full)}
	ml := maxLocal(t.pg.PageSize())
	if len(full) <= ml {
		if pageType == typeTableLeaf {
			c.payload = full
		} else {
			c.key = full
		}
	} else {
		inline := minLocal(t.pg.PageSize())
		ovfl, err := t.writeOverflow(full[inline:])
		if err != nil {
			return c, err
		}
		c.ovfl = ovfl
		if pageType == typeTableLeaf {
			c.payload = full[:inline]
		} else {
			c.key = full[:inline]
		}
	}
	return c, nil
}

// fullKey materializes an index cell's complete key, following the
// overflow chain when needed.
func (t *Tree) fullKey(c cell) ([]byte, error) {
	if c.ovfl == 0 {
		return c.key, nil
	}
	out := append([]byte(nil), c.key...)
	return t.readOverflow(c.ovfl, out, c.total)
}

// fullPayload materializes a table cell's complete payload.
func (t *Tree) fullPayload(c cell) ([]byte, error) {
	if c.ovfl == 0 {
		return c.payload, nil
	}
	out := append([]byte(nil), c.payload...)
	return t.readOverflow(c.ovfl, out, c.total)
}

// ---- search ----

// leafFind locates the slot for a key within a leaf page: the first
// slot whose key is >= the probe, with found=true on equality.
func (t *Tree) leafFind(d []byte, rowid int64, key []byte) (int, bool, error) {
	n := nCells(d)
	var cmpAt func(i int) (int, error)
	if d[offType] == typeTableLeaf {
		cmpAt = func(i int) (int, error) {
			c, err := t.parseCell(d, i)
			if err != nil {
				return 0, err
			}
			switch {
			case rowid < c.rowid:
				return -1, nil
			case rowid > c.rowid:
				return 1, nil
			default:
				return 0, nil
			}
		}
	} else {
		cmpAt = func(i int) (int, error) {
			c, err := t.parseCell(d, i)
			if err != nil {
				return 0, err
			}
			k, err := t.fullKey(c)
			if err != nil {
				return 0, err
			}
			return t.cmp(key, k), nil
		}
	}
	var ferr error
	idx := sort.Search(n, func(i int) bool {
		if ferr != nil {
			return true
		}
		r, err := cmpAt(i)
		if err != nil {
			ferr = err
			return true
		}
		return r <= 0
	})
	if ferr != nil {
		return 0, false, ferr
	}
	if idx < n {
		r, err := cmpAt(idx)
		if err != nil {
			return 0, false, err
		}
		return idx, r == 0, nil
	}
	return idx, false, nil
}

// interiorChild chooses which child to descend for a key.
func (t *Tree) interiorChild(d []byte, rowid int64, key []byte) (pager.Pgno, error) {
	n := nCells(d)
	for i := 0; i < n; i++ {
		c, err := t.parseCell(d, i)
		if err != nil {
			return 0, err
		}
		if d[offType] == typeTableInterior {
			if rowid <= c.rowid {
				return c.child, nil
			}
		} else {
			if t.cmp(key, c.key) <= 0 {
				return c.child, nil
			}
		}
	}
	return pager.Pgno(getU32(d, offRight)), nil
}

// Get fetches a table row's payload by rowid.
func (t *Tree) Get(rowid int64) ([]byte, bool, error) {
	if t.kind != KindTable {
		return nil, false, ErrWrongKind
	}
	pgno := t.root
	for {
		pg, err := t.pg.Get(pgno)
		if err != nil {
			return nil, false, err
		}
		d := pg.Data()
		if isLeaf(d) {
			idx, found, err := t.leafFind(d, rowid, nil)
			if err != nil || !found {
				pg.Release()
				return nil, false, err
			}
			c, err := t.parseCell(d, idx)
			if err != nil {
				pg.Release()
				return nil, false, err
			}
			out, err := t.fullPayload(c)
			if c.ovfl == 0 {
				out = append([]byte(nil), out...)
			}
			pg.Release()
			return out, err == nil, err
		}
		next, err := t.interiorChild(d, rowid, nil)
		pg.Release()
		if err != nil {
			return nil, false, err
		}
		if next == 0 {
			return nil, false, fmt.Errorf("%w: nil child", ErrCorrupt)
		}
		pgno = next
	}
}

// splitResult propagates a page split upward.
type splitResult struct {
	sepRowid int64
	sepKey   []byte
	right    pager.Pgno
}

// Insert adds or replaces a table row.
func (t *Tree) Insert(rowid int64, payload []byte) error {
	if t.kind != KindTable {
		return ErrWrongKind
	}
	c, err := t.buildLeafCell(typeTableLeaf, rowid, nil, payload)
	if err != nil {
		return err
	}
	return t.insertCell(c, nil)
}

// InsertKey adds an index entry (keys must be unique; the engine
// appends the rowid to enforce that).
func (t *Tree) InsertKey(key []byte) error {
	if t.kind != KindIndex {
		return ErrWrongKind
	}
	c, err := t.buildLeafCell(typeIndexLeaf, 0, key, nil)
	if err != nil {
		return err
	}
	return t.insertCell(c, key)
}

func (t *Tree) insertCell(c cell, key []byte) error {
	split, err := t.insertInto(t.root, c, key)
	if err != nil {
		return err
	}
	if split != nil {
		return t.splitRoot(*split)
	}
	return nil
}

// splitRoot grows the tree by one level, keeping the root page number
// stable: the root's current content moves to a fresh page that becomes
// the left child.
func (t *Tree) splitRoot(s splitResult) error {
	rootPg, err := t.pg.Get(t.root)
	if err != nil {
		return err
	}
	defer rootPg.Release()
	if err := t.pg.Write(rootPg); err != nil {
		return err
	}
	leftPg, err := t.pg.Allocate()
	if err != nil {
		return err
	}
	defer leftPg.Release()
	copy(leftPg.Data(), rootPg.Data())

	d := rootPg.Data()
	interiorType := byte(typeTableInterior)
	if t.kind == KindIndex {
		interiorType = typeIndexInterior
	}
	initPage(d, interiorType)
	sep := cell{child: leftPg.Pgno(), rowid: s.sepRowid, key: s.sepKey}
	raw := encodeCell(interiorType, sep)
	if !insertCellAt(d, 0, raw) {
		return fmt.Errorf("%w: root separator does not fit", ErrCorrupt)
	}
	putU32(d, offRight, uint32(s.right))
	return nil
}

// insertInto descends to the leaf for the cell and inserts, splitting
// on the way back up as needed.
func (t *Tree) insertInto(pgno pager.Pgno, c cell, key []byte) (*splitResult, error) {
	pg, err := t.pg.Get(pgno)
	if err != nil {
		return nil, err
	}
	defer pg.Release()
	d := pg.Data()

	if isLeaf(d) {
		if err := t.pg.Write(pg); err != nil {
			return nil, err
		}
		idx, found, err := t.leafFind(d, c.rowid, key)
		if err != nil {
			return nil, err
		}
		if found {
			old, err := t.parseCell(d, idx)
			if err != nil {
				return nil, err
			}
			if old.ovfl != 0 {
				if err := t.freeOverflow(old.ovfl); err != nil {
					return nil, err
				}
			}
			removeCellAt(d, idx, len(old.raw))
		}
		raw := encodeCell(d[offType], c)
		if len(raw)+ptrSize > len(d)-hdrSize {
			return nil, ErrTooLarge
		}
		if insertCellAt(d, idx, raw) {
			return nil, nil
		}
		return t.splitLeaf(pg, idx, raw)
	}

	child, err := t.interiorChild(d, c.rowid, key)
	if err != nil {
		return nil, err
	}
	if child == 0 {
		return nil, fmt.Errorf("%w: nil child in insert", ErrCorrupt)
	}
	split, err := t.insertInto(child, c, key)
	if err != nil || split == nil {
		return nil, err
	}
	// The child split: insert a separator cell routing to the old child
	// and point the old reference at the new right sibling.
	if err := t.pg.Write(pg); err != nil {
		return nil, err
	}
	interiorType := d[offType]
	sep := cell{child: child, rowid: split.sepRowid, key: split.sepKey}
	raw := encodeCell(interiorType, sep)
	// Find the position of the child reference.
	n := nCells(d)
	pos := n
	for i := 0; i < n; i++ {
		ci, err := t.parseCell(d, i)
		if err != nil {
			return nil, err
		}
		if ci.child == child {
			pos = i
			break
		}
	}
	if pos == n {
		putU32(d, offRight, uint32(split.right))
	} else {
		// Rewrite the existing cell to point at the right sibling.
		ci, err := t.parseCell(d, pos)
		if err != nil {
			return nil, err
		}
		rewritten := ci
		rewritten.child = split.right
		newRaw := encodeCell(interiorType, rewritten)
		removeCellAt(d, pos, len(ci.raw))
		if !insertCellAt(d, pos, newRaw) {
			return nil, fmt.Errorf("%w: interior rewrite does not fit", ErrCorrupt)
		}
	}
	if insertCellAt(d, pos, raw) {
		return nil, nil
	}
	return t.splitInterior(pg, pos, raw)
}

// collectCells decodes every raw cell on a page.
func collectRaw(d []byte) [][]byte {
	n := nCells(d)
	out := make([][]byte, 0, n+1)
	for i := 0; i < n; i++ {
		off := cellPtr(d, i)
		ln := cellLen(d, off)
		raw := make([]byte, ln)
		copy(raw, d[off:off+ln])
		out = append(out, raw)
	}
	return out
}

// splitLeaf distributes a leaf's cells (plus one incoming raw cell at
// slot idx) across the old page and a new right sibling.
func (t *Tree) splitLeaf(pg *pager.Page, idx int, raw []byte) (*splitResult, error) {
	d := pg.Data()
	cells := collectRaw(d)
	cells = append(cells[:idx], append([][]byte{raw}, cells[idx:]...)...)
	mid := (len(cells) + 1) / 2

	rightPg, err := t.pg.Allocate()
	if err != nil {
		return nil, err
	}
	defer rightPg.Release()
	rd := rightPg.Data()
	pageType := d[offType]
	nextLeaf := getU32(d, offRight)

	initPage(d, pageType)
	initPage(rd, pageType)
	for i, c := range cells[:mid] {
		if !insertCellAt(d, i, c) {
			return nil, fmt.Errorf("%w: split left overflow", ErrCorrupt)
		}
	}
	for i, c := range cells[mid:] {
		if !insertCellAt(rd, i, c) {
			return nil, fmt.Errorf("%w: split right overflow", ErrCorrupt)
		}
	}
	// Leaf chain: left -> right -> old next.
	putU32(d, offRight, uint32(rightPg.Pgno()))
	putU32(rd, offRight, nextLeaf)

	// Separator: greatest key of the left page.
	last, err := t.parseCell(d, mid-1)
	if err != nil {
		return nil, err
	}
	res := &splitResult{right: rightPg.Pgno()}
	if pageType == typeTableLeaf {
		res.sepRowid = last.rowid
	} else {
		k, err := t.fullKey(last)
		if err != nil {
			return nil, err
		}
		res.sepKey = append([]byte(nil), k...)
	}
	return res, nil
}

// splitInterior splits an interior page around its middle cell, whose
// key moves up as the separator.
func (t *Tree) splitInterior(pg *pager.Page, idx int, raw []byte) (*splitResult, error) {
	d := pg.Data()
	cells := collectRaw(d)
	cells = append(cells[:idx], append([][]byte{raw}, cells[idx:]...)...)
	right := getU32(d, offRight)
	pageType := d[offType]
	mid := len(cells) / 2

	// Parse the middle cell for promotion.
	midCell, err := t.parseRaw(pageType, cells[mid])
	if err != nil {
		return nil, err
	}

	rightPg, err := t.pg.Allocate()
	if err != nil {
		return nil, err
	}
	defer rightPg.Release()
	rd := rightPg.Data()
	initPage(rd, pageType)
	for i, c := range cells[mid+1:] {
		if !insertCellAt(rd, i, c) {
			return nil, fmt.Errorf("%w: interior split right overflow", ErrCorrupt)
		}
	}
	putU32(rd, offRight, right)

	initPage(d, pageType)
	for i, c := range cells[:mid] {
		if !insertCellAt(d, i, c) {
			return nil, fmt.Errorf("%w: interior split left overflow", ErrCorrupt)
		}
	}
	putU32(d, offRight, uint32(midCell.child))

	res := &splitResult{right: rightPg.Pgno(), sepRowid: midCell.rowid}
	if pageType == typeIndexInterior {
		res.sepKey = append([]byte(nil), midCell.key...)
	}
	return res, nil
}

// parseRaw decodes a standalone raw cell of a given page type.
func (t *Tree) parseRaw(pageType byte, raw []byte) (cell, error) {
	// Build a minimal fake page around the raw cell.
	scratch := make([]byte, t.pg.PageSize())
	scratch[offType] = pageType
	putU16(scratch, offNCells, 1)
	off := len(scratch) - len(raw)
	copy(scratch[off:], raw)
	putU16(scratch, hdrSize, uint16(off))
	putU16(scratch, offContent, uint16(off))
	return t.parseCell(scratch, 0)
}

// Delete removes a table row by rowid; ok reports whether it existed.
func (t *Tree) Delete(rowid int64) (bool, error) {
	if t.kind != KindTable {
		return false, ErrWrongKind
	}
	return t.deleteFrom(t.root, rowid, nil)
}

// DeleteKey removes an index entry; ok reports whether it existed.
func (t *Tree) DeleteKey(key []byte) (bool, error) {
	if t.kind != KindIndex {
		return false, ErrWrongKind
	}
	return t.deleteFrom(t.root, 0, key)
}

func (t *Tree) deleteFrom(pgno pager.Pgno, rowid int64, key []byte) (bool, error) {
	pg, err := t.pg.Get(pgno)
	if err != nil {
		return false, err
	}
	defer pg.Release()
	d := pg.Data()
	if !isLeaf(d) {
		child, err := t.interiorChild(d, rowid, key)
		if err != nil {
			return false, err
		}
		if child == 0 {
			return false, nil
		}
		return t.deleteFrom(child, rowid, key)
	}
	idx, found, err := t.leafFind(d, rowid, key)
	if err != nil || !found {
		return false, err
	}
	if err := t.pg.Write(pg); err != nil {
		return false, err
	}
	c, err := t.parseCell(d, idx)
	if err != nil {
		return false, err
	}
	if c.ovfl != 0 {
		if err := t.freeOverflow(c.ovfl); err != nil {
			return false, err
		}
	}
	removeCellAt(d, idx, len(c.raw))
	return true, nil
}

// MaxRowid reports the largest rowid in a table tree (0 when empty).
func (t *Tree) MaxRowid() (int64, error) {
	if t.kind != KindTable {
		return 0, ErrWrongKind
	}
	pgno := t.root
	for {
		pg, err := t.pg.Get(pgno)
		if err != nil {
			return 0, err
		}
		d := pg.Data()
		if !isLeaf(d) {
			next := pager.Pgno(getU32(d, offRight))
			pg.Release()
			pgno = next
			continue
		}
		// Rightmost leaf; but emptied leaves may trail, so walk the
		// chain remembering the last key seen.
		var best int64
		for {
			if n := nCells(d); n > 0 {
				c, err := t.parseCell(d, n-1)
				if err != nil {
					pg.Release()
					return 0, err
				}
				if c.rowid > best {
					best = c.rowid
				}
			}
			next := pager.Pgno(getU32(d, offRight))
			pg.Release()
			if next == 0 {
				return best, nil
			}
			var err error
			pg, err = t.pg.Get(next)
			if err != nil {
				return 0, err
			}
			d = pg.Data()
		}
	}
}

// Drop frees every page of the tree except the root, which is reset to
// an empty leaf (so the root page number stays valid), then frees the
// root too if requested by the engine via pager.Free.
func (t *Tree) Drop() error {
	if err := t.dropSubtree(t.root, false); err != nil {
		return err
	}
	pg, err := t.pg.Get(t.root)
	if err != nil {
		return err
	}
	defer pg.Release()
	if err := t.pg.Write(pg); err != nil {
		return err
	}
	leafType := byte(typeTableLeaf)
	if t.kind == KindIndex {
		leafType = typeIndexLeaf
	}
	initPage(pg.Data(), leafType)
	return nil
}

func (t *Tree) dropSubtree(pgno pager.Pgno, freeSelf bool) error {
	pg, err := t.pg.Get(pgno)
	if err != nil {
		return err
	}
	d := pg.Data()
	n := nCells(d)
	if isLeaf(d) {
		for i := 0; i < n; i++ {
			c, err := t.parseCell(d, i)
			if err != nil {
				pg.Release()
				return err
			}
			if c.ovfl != 0 {
				if err := t.freeOverflow(c.ovfl); err != nil {
					pg.Release()
					return err
				}
			}
		}
	} else {
		children := make([]pager.Pgno, 0, n+1)
		for i := 0; i < n; i++ {
			c, err := t.parseCell(d, i)
			if err != nil {
				pg.Release()
				return err
			}
			children = append(children, c.child)
		}
		if r := pager.Pgno(getU32(d, offRight)); r != 0 {
			children = append(children, r)
		}
		pg.Release()
		for _, ch := range children {
			if err := t.dropSubtree(ch, true); err != nil {
				return err
			}
		}
		if freeSelf {
			return t.pg.Free(pgno)
		}
		return nil
	}
	pg.Release()
	if freeSelf {
		return t.pg.Free(pgno)
	}
	return nil
}
