package btree

import (
	"fmt"

	"repro/internal/sqlite/pager"
)

// Cursor iterates a tree in key order via the leaf sibling chain. A
// cursor is a snapshot-free iterator: mutating the tree invalidates it
// (the executor materializes its target rowids before modifying, as
// SQLite's own OP_Delete/OP_Insert loops effectively do).
type Cursor struct {
	t     *Tree
	pgno  pager.Pgno
	idx   int
	valid bool
}

// SeekFirst positions a cursor on the smallest entry.
func (t *Tree) SeekFirst() (*Cursor, error) {
	pgno := t.root
	for {
		pg, err := t.pg.Get(pgno)
		if err != nil {
			return nil, err
		}
		d := pg.Data()
		if isLeaf(d) {
			pg.Release()
			c := &Cursor{t: t, pgno: pgno, idx: 0, valid: true}
			return c, c.skipEmpty()
		}
		var next pager.Pgno
		if nCells(d) > 0 {
			c0, err := t.parseCell(d, 0)
			if err != nil {
				pg.Release()
				return nil, err
			}
			next = c0.child
		} else {
			next = pager.Pgno(getU32(d, offRight))
		}
		pg.Release()
		if next == 0 {
			return nil, fmt.Errorf("%w: empty interior", ErrCorrupt)
		}
		pgno = next
	}
}

// Seek positions a table cursor on the first entry with rowid >= the
// probe.
func (t *Tree) SeekRowid(rowid int64) (*Cursor, error) {
	if t.kind != KindTable {
		return nil, ErrWrongKind
	}
	return t.seek(rowid, nil)
}

// SeekKey positions an index cursor on the first entry with key >= the
// probe.
func (t *Tree) SeekKey(key []byte) (*Cursor, error) {
	if t.kind != KindIndex {
		return nil, ErrWrongKind
	}
	return t.seek(0, key)
}

func (t *Tree) seek(rowid int64, key []byte) (*Cursor, error) {
	pgno := t.root
	for {
		pg, err := t.pg.Get(pgno)
		if err != nil {
			return nil, err
		}
		d := pg.Data()
		if isLeaf(d) {
			idx, _, err := t.leafFind(d, rowid, key)
			pg.Release()
			if err != nil {
				return nil, err
			}
			c := &Cursor{t: t, pgno: pgno, idx: idx, valid: true}
			return c, c.skipEmpty()
		}
		next, err := t.interiorChild(d, rowid, key)
		pg.Release()
		if err != nil {
			return nil, err
		}
		if next == 0 {
			return nil, fmt.Errorf("%w: nil child in seek", ErrCorrupt)
		}
		pgno = next
	}
}

// Valid reports whether the cursor points at an entry.
func (c *Cursor) Valid() bool { return c.valid }

// skipEmpty advances past exhausted leaves (deletions leave them in the
// chain).
func (c *Cursor) skipEmpty() error {
	for c.valid {
		pg, err := c.t.pg.Get(c.pgno)
		if err != nil {
			return err
		}
		d := pg.Data()
		n := nCells(d)
		next := pager.Pgno(getU32(d, offRight))
		pg.Release()
		if c.idx < n {
			return nil
		}
		if next == 0 {
			c.valid = false
			return nil
		}
		c.pgno = next
		c.idx = 0
	}
	return nil
}

// Next advances to the following entry.
func (c *Cursor) Next() error {
	if !c.valid {
		return nil
	}
	c.idx++
	return c.skipEmpty()
}

// cell fetches the decoded cell under the cursor.
func (c *Cursor) cell() (cell, error) {
	if !c.valid {
		return cell{}, ErrNotFound
	}
	pg, err := c.t.pg.Get(c.pgno)
	if err != nil {
		return cell{}, err
	}
	defer pg.Release()
	d := pg.Data()
	if c.idx >= nCells(d) {
		return cell{}, fmt.Errorf("%w: cursor past end", ErrCorrupt)
	}
	cl, err := c.t.parseCell(d, c.idx)
	if err != nil {
		return cell{}, err
	}
	// Copy byte fields out of the shared page buffer.
	cl.key = append([]byte(nil), cl.key...)
	cl.payload = append([]byte(nil), cl.payload...)
	return cl, nil
}

// Rowid reports the current table entry's rowid.
func (c *Cursor) Rowid() (int64, error) {
	if c.t.kind != KindTable {
		return 0, ErrWrongKind
	}
	cl, err := c.cell()
	if err != nil {
		return 0, err
	}
	return cl.rowid, nil
}

// Payload materializes the current table entry's full payload.
func (c *Cursor) Payload() ([]byte, error) {
	if c.t.kind != KindTable {
		return nil, ErrWrongKind
	}
	cl, err := c.cell()
	if err != nil {
		return nil, err
	}
	return c.t.fullPayload(cl)
}

// Key materializes the current index entry's full key.
func (c *Cursor) Key() ([]byte, error) {
	if c.t.kind != KindIndex {
		return nil, ErrWrongKind
	}
	cl, err := c.cell()
	if err != nil {
		return nil, err
	}
	return c.t.fullKey(cl)
}
