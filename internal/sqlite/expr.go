package sqlite

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sqlite/sqlparse"
)

// source is one table binding in the current row scope.
type source struct {
	alias string // lower-cased alias or table name
	tbl   *Table
	vals  []Value
	rowid int64
	bound bool // vals are valid
}

// evalCtx carries everything an expression evaluation can reference.
type evalCtx struct {
	sources []*source
	params  []Value
	// agg maps aggregate call nodes to their finalized values during
	// the output phase of a grouped query.
	agg map[*sqlparse.Call]Value
	rng func() int64 // deterministic RANDOM()
}

func (c *evalCtx) resolve(table, column string) (Value, error) {
	col := strings.ToLower(column)
	tbl := strings.ToLower(table)
	for _, s := range c.sources {
		if !s.bound {
			continue
		}
		if tbl != "" && s.alias != tbl && !strings.EqualFold(s.tbl.Name, table) {
			continue
		}
		if col == "rowid" || col == "_rowid_" || col == "oid" {
			return Int(s.rowid), nil
		}
		if i := s.tbl.ColumnIndex(column); i >= 0 {
			return s.vals[i], nil
		}
		if tbl != "" {
			return Null, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, column)
		}
	}
	return Null, fmt.Errorf("%w: %s", ErrNoSuchColumn, column)
}

// eval computes an expression against the current row scope.
func (c *evalCtx) eval(e sqlparse.Expr) (Value, error) {
	switch x := e.(type) {
	case *sqlparse.IntLit:
		return Int(x.Value), nil
	case *sqlparse.FloatLit:
		return Real(x.Value), nil
	case *sqlparse.StringLit:
		return Text(x.Value), nil
	case *sqlparse.BlobLit:
		return Blob(x.Value), nil
	case *sqlparse.NullLit:
		return Null, nil
	case *sqlparse.Param:
		if x.Index >= len(c.params) {
			return Null, fmt.Errorf("%w: parameter %d not bound", ErrParamMismatch, x.Index+1)
		}
		return c.params[x.Index], nil
	case *sqlparse.ColumnRef:
		return c.resolve(x.Table, x.Column)
	case *sqlparse.Unary:
		return c.evalUnary(x)
	case *sqlparse.Binary:
		return c.evalBinary(x)
	case *sqlparse.IsNull:
		v, err := c.eval(x.X)
		if err != nil {
			return Null, err
		}
		return Bool(v.IsNull() != x.Not), nil
	case *sqlparse.InList:
		return c.evalIn(x)
	case *sqlparse.Between:
		v, err := c.eval(x.X)
		if err != nil {
			return Null, err
		}
		lo, err := c.eval(x.Lo)
		if err != nil {
			return Null, err
		}
		hi, err := c.eval(x.Hi)
		if err != nil {
			return Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null, nil
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		return Bool(in != x.Not), nil
	case *sqlparse.Call:
		if v, ok := c.agg[x]; ok {
			return v, nil
		}
		return c.evalFunc(x)
	case *sqlparse.CaseExpr:
		return c.evalCase(x)
	default:
		return Null, fmt.Errorf("%w: expression %T", ErrUnsupported, e)
	}
}

func (c *evalCtx) evalUnary(x *sqlparse.Unary) (Value, error) {
	v, err := c.eval(x.X)
	if err != nil {
		return Null, err
	}
	switch x.Op {
	case "-":
		if v.IsNull() {
			return Null, nil
		}
		if v.Type() == TypeInt {
			return Int(-v.Int()), nil
		}
		return Real(-v.Real()), nil
	case "NOT":
		if v.IsNull() {
			return Null, nil
		}
		return Bool(!v.Truthy()), nil
	default:
		return Null, fmt.Errorf("%w: unary %q", ErrUnsupported, x.Op)
	}
}

func (c *evalCtx) evalBinary(x *sqlparse.Binary) (Value, error) {
	// AND/OR need SQL three-valued logic with short-circuiting.
	switch x.Op {
	case "AND":
		l, err := c.eval(x.L)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() && !l.Truthy() {
			return Bool(false), nil
		}
		r, err := c.eval(x.R)
		if err != nil {
			return Null, err
		}
		if !r.IsNull() && !r.Truthy() {
			return Bool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Bool(true), nil
	case "OR":
		l, err := c.eval(x.L)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() && l.Truthy() {
			return Bool(true), nil
		}
		r, err := c.eval(x.R)
		if err != nil {
			return Null, err
		}
		if !r.IsNull() && r.Truthy() {
			return Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Bool(false), nil
	}

	l, err := c.eval(x.L)
	if err != nil {
		return Null, err
	}
	r, err := c.eval(x.R)
	if err != nil {
		return Null, err
	}
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		cmp := Compare(l, r)
		switch x.Op {
		case "=":
			return Bool(cmp == 0), nil
		case "!=":
			return Bool(cmp != 0), nil
		case "<":
			return Bool(cmp < 0), nil
		case "<=":
			return Bool(cmp <= 0), nil
		case ">":
			return Bool(cmp > 0), nil
		default:
			return Bool(cmp >= 0), nil
		}
	case "+", "-", "*", "/", "%":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		if l.Type() == TypeInt && r.Type() == TypeInt {
			a, b := l.Int(), r.Int()
			switch x.Op {
			case "+":
				return Int(a + b), nil
			case "-":
				return Int(a - b), nil
			case "*":
				return Int(a * b), nil
			case "/":
				if b == 0 {
					return Null, nil
				}
				return Int(a / b), nil
			default:
				if b == 0 {
					return Null, nil
				}
				return Int(a % b), nil
			}
		}
		a, b := l.Real(), r.Real()
		switch x.Op {
		case "+":
			return Real(a + b), nil
		case "-":
			return Real(a - b), nil
		case "*":
			return Real(a * b), nil
		case "/":
			if b == 0 {
				return Null, nil
			}
			return Real(a / b), nil
		default:
			if b == 0 {
				return Null, nil
			}
			return Real(math.Mod(a, b)), nil
		}
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Text(l.Text() + r.Text()), nil
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Bool(likeMatch(r.Text(), l.Text())), nil
	default:
		return Null, fmt.Errorf("%w: operator %q", ErrUnsupported, x.Op)
	}
}

func (c *evalCtx) evalIn(x *sqlparse.InList) (Value, error) {
	v, err := c.eval(x.X)
	if err != nil {
		return Null, err
	}
	if v.IsNull() {
		return Null, nil
	}
	sawNull := false
	for _, item := range x.List {
		iv, err := c.eval(item)
		if err != nil {
			return Null, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if Compare(v, iv) == 0 {
			return Bool(!x.Not), nil
		}
	}
	if sawNull {
		return Null, nil
	}
	return Bool(x.Not), nil
}

func (c *evalCtx) evalCase(x *sqlparse.CaseExpr) (Value, error) {
	var operand Value
	hasOperand := x.Operand != nil
	if hasOperand {
		var err error
		operand, err = c.eval(x.Operand)
		if err != nil {
			return Null, err
		}
	}
	for _, w := range x.Whens {
		cond, err := c.eval(w.Cond)
		if err != nil {
			return Null, err
		}
		matched := false
		if hasOperand {
			matched = !cond.IsNull() && !operand.IsNull() && Compare(operand, cond) == 0
		} else {
			matched = !cond.IsNull() && cond.Truthy()
		}
		if matched {
			return c.eval(w.Then)
		}
	}
	if x.Else != nil {
		return c.eval(x.Else)
	}
	return Null, nil
}

// evalFunc handles scalar (non-aggregate) functions.
func (c *evalCtx) evalFunc(x *sqlparse.Call) (Value, error) {
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := c.eval(a)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	switch x.Name {
	case "LENGTH":
		if len(args) != 1 || args[0].IsNull() {
			return Null, nil
		}
		if args[0].Type() == TypeBlob {
			return Int(int64(len(args[0].Blob()))), nil
		}
		return Int(int64(len(args[0].Text()))), nil
	case "UPPER":
		if len(args) != 1 || args[0].IsNull() {
			return Null, nil
		}
		return Text(strings.ToUpper(args[0].Text())), nil
	case "LOWER":
		if len(args) != 1 || args[0].IsNull() {
			return Null, nil
		}
		return Text(strings.ToLower(args[0].Text())), nil
	case "ABS":
		if len(args) != 1 || args[0].IsNull() {
			return Null, nil
		}
		if args[0].Type() == TypeInt {
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return Int(v), nil
		}
		return Real(math.Abs(args[0].Real())), nil
	case "COALESCE", "IFNULL":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null, nil
	case "SUBSTR", "SUBSTRING":
		if len(args) < 2 || args[0].IsNull() {
			return Null, nil
		}
		s := args[0].Text()
		start := int(args[1].Int())
		if start > 0 {
			start--
		} else if start < 0 {
			start = len(s) + start
		}
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return Text(""), nil
		}
		end := len(s)
		if len(args) >= 3 {
			if n := int(args[2].Int()); start+n < end {
				end = start + n
			}
		}
		if end < start {
			end = start
		}
		return Text(s[start:end]), nil
	case "MIN":
		// Scalar MIN with >= 2 args (single-arg MIN is an aggregate).
		best := Null
		for _, a := range args {
			if a.IsNull() {
				return Null, nil
			}
			if best.IsNull() || Compare(a, best) < 0 {
				best = a
			}
		}
		return best, nil
	case "MAX":
		best := Null
		for _, a := range args {
			if a.IsNull() {
				return Null, nil
			}
			if best.IsNull() || Compare(a, best) > 0 {
				best = a
			}
		}
		return best, nil
	case "RANDOM":
		if c.rng != nil {
			return Int(c.rng()), nil
		}
		return Int(0), nil
	case "ROUND":
		if len(args) < 1 || args[0].IsNull() {
			return Null, nil
		}
		digits := 0
		if len(args) >= 2 {
			digits = int(args[1].Int())
		}
		scale := math.Pow(10, float64(digits))
		return Real(math.Round(args[0].Real()*scale) / scale), nil
	case "TYPEOF":
		if len(args) != 1 {
			return Null, nil
		}
		return Text(strings.ToLower(args[0].Type().String())), nil
	default:
		return Null, fmt.Errorf("%w: function %s", ErrUnsupported, x.Name)
	}
}

// likeMatch implements SQL LIKE: case-insensitive, % matches any run,
// _ matches one character.
func likeMatch(pattern, s string) bool {
	return likeRec(strings.ToLower(pattern), strings.ToLower(s))
}

func likeRec(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			p = p[1:]
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}

// aggregate names recognized when used with a single argument (or *).
func isAggregate(call *sqlparse.Call) bool {
	switch call.Name {
	case "COUNT", "SUM", "TOTAL", "AVG":
		return true
	case "MIN", "MAX":
		return call.Star || len(call.Args) == 1
	default:
		return false
	}
}

// collectAggregates gathers aggregate calls appearing in an expression.
func collectAggregates(e sqlparse.Expr, out *[]*sqlparse.Call) {
	switch x := e.(type) {
	case *sqlparse.Call:
		if isAggregate(x) {
			*out = append(*out, x)
			return
		}
		for _, a := range x.Args {
			collectAggregates(a, out)
		}
	case *sqlparse.Unary:
		collectAggregates(x.X, out)
	case *sqlparse.Binary:
		collectAggregates(x.L, out)
		collectAggregates(x.R, out)
	case *sqlparse.IsNull:
		collectAggregates(x.X, out)
	case *sqlparse.InList:
		collectAggregates(x.X, out)
		for _, i := range x.List {
			collectAggregates(i, out)
		}
	case *sqlparse.Between:
		collectAggregates(x.X, out)
		collectAggregates(x.Lo, out)
		collectAggregates(x.Hi, out)
	case *sqlparse.CaseExpr:
		if x.Operand != nil {
			collectAggregates(x.Operand, out)
		}
		for _, w := range x.Whens {
			collectAggregates(w.Cond, out)
			collectAggregates(w.Then, out)
		}
		if x.Else != nil {
			collectAggregates(x.Else, out)
		}
	}
}

// aggState accumulates one aggregate over a group.
type aggState struct {
	call     *sqlparse.Call
	count    int64
	sumI     int64
	sumF     float64
	isFloat  bool
	best     Value
	haveBest bool
	distinct map[string]bool
}

func newAggState(call *sqlparse.Call) *aggState {
	st := &aggState{call: call}
	if call.Distinct {
		st.distinct = make(map[string]bool)
	}
	return st
}

func (st *aggState) step(ctx *evalCtx) error {
	var v Value
	if st.call.Star {
		v = Int(1)
	} else {
		var err error
		v, err = ctx.eval(st.call.Args[0])
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil // aggregates skip NULLs
		}
	}
	if st.distinct != nil {
		key := string(EncodeRecord([]Value{v}))
		if st.distinct[key] {
			return nil
		}
		st.distinct[key] = true
	}
	st.count++
	switch st.call.Name {
	case "SUM", "TOTAL", "AVG":
		if v.Type() == TypeReal || st.isFloat {
			st.isFloat = true
			st.sumF += v.Real()
		} else {
			st.sumI += v.Int()
			st.sumF += v.Real()
		}
	case "MIN":
		if !st.haveBest || Compare(v, st.best) < 0 {
			st.best, st.haveBest = v, true
		}
	case "MAX":
		if !st.haveBest || Compare(v, st.best) > 0 {
			st.best, st.haveBest = v, true
		}
	}
	return nil
}

func (st *aggState) final() Value {
	switch st.call.Name {
	case "COUNT":
		return Int(st.count)
	case "SUM":
		if st.count == 0 {
			return Null
		}
		if st.isFloat {
			return Real(st.sumF)
		}
		return Int(st.sumI)
	case "TOTAL":
		return Real(st.sumF)
	case "AVG":
		if st.count == 0 {
			return Null
		}
		return Real(st.sumF / float64(st.count))
	case "MIN", "MAX":
		if !st.haveBest {
			return Null
		}
		return st.best
	default:
		return Null
	}
}
