package sqlite

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Record encoding follows the shape of SQLite's record format: a header
// of serial-type varints (preceded by the header length) and a body of
// encoded column values. Serial types:
//
//	0        NULL
//	1..4     big-endian signed integers of 1, 2, 4, 8 bytes
//	7        IEEE-754 float64
//	>=12 even  BLOB of (st-12)/2 bytes
//	>=13 odd   TEXT of (st-13)/2 bytes
var errBadRecord = errors.New("sqlite: corrupt record")

// EncodeRecord serializes values into the record format.
func EncodeRecord(vals []Value) []byte {
	var hdr, body []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vals {
		switch v.typ {
		case TypeNull:
			hdr = append(hdr, 0)
		case TypeInt:
			st, enc := encodeInt(v.i)
			n := binary.PutUvarint(tmp[:], st)
			hdr = append(hdr, tmp[:n]...)
			body = append(body, enc...)
		case TypeReal:
			n := binary.PutUvarint(tmp[:], 7)
			hdr = append(hdr, tmp[:n]...)
			var f [8]byte
			binary.BigEndian.PutUint64(f[:], math.Float64bits(v.f))
			body = append(body, f[:]...)
		case TypeText:
			st := uint64(13 + 2*len(v.s))
			n := binary.PutUvarint(tmp[:], st)
			hdr = append(hdr, tmp[:n]...)
			body = append(body, v.s...)
		case TypeBlob:
			st := uint64(12 + 2*len(v.b))
			n := binary.PutUvarint(tmp[:], st)
			hdr = append(hdr, tmp[:n]...)
			body = append(body, v.b...)
		}
	}
	n := binary.PutUvarint(tmp[:], uint64(len(hdr)))
	out := make([]byte, 0, n+len(hdr)+len(body))
	out = append(out, tmp[:n]...)
	out = append(out, hdr...)
	out = append(out, body...)
	return out
}

func encodeInt(v int64) (uint64, []byte) {
	switch {
	case v >= math.MinInt8 && v <= math.MaxInt8:
		return 1, []byte{byte(v)}
	case v >= math.MinInt16 && v <= math.MaxInt16:
		var b [2]byte
		binary.BigEndian.PutUint16(b[:], uint16(v))
		return 2, b[:]
	case v >= math.MinInt32 && v <= math.MaxInt32:
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(v))
		return 3, b[:]
	default:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v))
		return 4, b[:]
	}
}

// DecodeRecord parses a record into values.
func DecodeRecord(data []byte) ([]Value, error) {
	hdrLen, n := binary.Uvarint(data)
	if n <= 0 || uint64(n)+hdrLen > uint64(len(data)) {
		return nil, errBadRecord
	}
	hdr := data[n : n+int(hdrLen)]
	body := data[n+int(hdrLen):]
	var vals []Value
	for len(hdr) > 0 {
		st, m := binary.Uvarint(hdr)
		if m <= 0 {
			return nil, errBadRecord
		}
		hdr = hdr[m:]
		switch {
		case st == 0:
			vals = append(vals, Null)
		case st == 1:
			if len(body) < 1 {
				return nil, errBadRecord
			}
			vals = append(vals, Int(int64(int8(body[0]))))
			body = body[1:]
		case st == 2:
			if len(body) < 2 {
				return nil, errBadRecord
			}
			vals = append(vals, Int(int64(int16(binary.BigEndian.Uint16(body)))))
			body = body[2:]
		case st == 3:
			if len(body) < 4 {
				return nil, errBadRecord
			}
			vals = append(vals, Int(int64(int32(binary.BigEndian.Uint32(body)))))
			body = body[4:]
		case st == 4:
			if len(body) < 8 {
				return nil, errBadRecord
			}
			vals = append(vals, Int(int64(binary.BigEndian.Uint64(body))))
			body = body[8:]
		case st == 7:
			if len(body) < 8 {
				return nil, errBadRecord
			}
			vals = append(vals, Real(math.Float64frombits(binary.BigEndian.Uint64(body))))
			body = body[8:]
		case st >= 12 && st%2 == 0:
			ln := int((st - 12) / 2)
			if len(body) < ln {
				return nil, errBadRecord
			}
			b := make([]byte, ln)
			copy(b, body[:ln])
			vals = append(vals, Blob(b))
			body = body[ln:]
		case st >= 13:
			ln := int((st - 13) / 2)
			if len(body) < ln {
				return nil, errBadRecord
			}
			vals = append(vals, Text(string(body[:ln])))
			body = body[ln:]
		default:
			return nil, fmt.Errorf("%w: serial type %d", errBadRecord, st)
		}
	}
	return vals, nil
}

// CompareRecords orders two encoded records column-wise with SQLite
// value semantics; shorter records order before longer ones when equal
// on the shared prefix. Used as the index-tree comparator.
func CompareRecords(a, b []byte) int {
	av, errA := DecodeRecord(a)
	bv, errB := DecodeRecord(b)
	if errA != nil || errB != nil {
		return compareBytes(a, b) // degraded but total order
	}
	n := min(len(av), len(bv))
	for i := 0; i < n; i++ {
		if c := Compare(av[i], bv[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(av) < len(bv):
		return -1
	case len(av) > len(bv):
		return 1
	default:
		return 0
	}
}
