package pager

import (
	"testing"
)

// viewFill reads one page through a captured WAL view and returns its
// fill byte.
func viewFill(t *testing.T, v *WALView, ps int, pgno Pgno) byte {
	t.Helper()
	buf := make([]byte, ps)
	if err := v.readPage(pgno, buf); err != nil {
		t.Fatalf("view read %d: %v", pgno, err)
	}
	return buf[64]
}

// A captured WAL view keeps reading the committed state of its capture
// while the writer commits past it, both for pages whose committed
// version sits in the log and for pages already checkpointed into the
// database file.
func TestWALViewIsolatesConcurrentCommits(t *testing.T) {
	e := newEnv(t, WAL)
	p := openPager(t, e, WAL, 100)
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	pgnos := grow(t, p, 3)
	for _, pgno := range pgnos {
		setPage(t, p, pgno, 0xA1)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// Checkpoint so one page's committed home is the db file, then
	// commit a log-resident version of another.
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	setPage(t, p, pgnos[0], 0xB2)
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}

	v, err := p.CaptureWALView()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	ps := p.PageSize()
	if got := viewFill(t, v, ps, pgnos[0]); got != 0xB2 {
		t.Fatalf("view log page: got %#x, want 0xB2", got)
	}
	if got := viewFill(t, v, ps, pgnos[1]); got != 0xA1 {
		t.Fatalf("view db page: got %#x, want 0xA1", got)
	}

	// Writer moves on; the view must not.
	for i := 0; i < 4; i++ {
		if err := p.Begin(); err != nil {
			t.Fatal(err)
		}
		for _, pgno := range pgnos {
			setPage(t, p, pgno, byte(0xC0+i))
		}
		if err := p.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := viewFill(t, v, ps, pgnos[0]); got != 0xB2 {
		t.Fatalf("view after later commits: got %#x, want 0xB2", got)
	}
	if got := viewFill(t, v, ps, pgnos[1]); got != 0xA1 {
		t.Fatalf("view after later commits: got %#x, want 0xA1", got)
	}
	// The live pager sees the newest committed state.
	if got := getFill(t, p, pgnos[0]); got != 0xC3 {
		t.Fatalf("live pager: got %#x, want 0xC3", got)
	}
}

// Checkpoints defer while any view is live — a checkpoint would rewrite
// database pages the view still references — and run once released.
func TestWALViewDefersCheckpoint(t *testing.T) {
	e := newEnv(t, WAL)
	p := openPager(t, e, WAL, 100)
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	pgnos := grow(t, p, 2)
	for _, pgno := range pgnos {
		setPage(t, p, pgno, 0x11)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	v, err := p.CaptureWALView()
	if err != nil {
		t.Fatal(err)
	}
	before := p.Checkpoints
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if p.Checkpoints != before || p.CkptDeferred == 0 {
		t.Fatalf("checkpoint ran under a live view: ckpts %d→%d, deferred %d",
			before, p.Checkpoints, p.CkptDeferred)
	}
	// The automatic threshold defers too: pile up commits well past
	// CheckpointPages (50 in this fixture).
	for i := 0; i < 40; i++ {
		if err := p.Begin(); err != nil {
			t.Fatal(err)
		}
		setPage(t, p, pgnos[0], byte(i))
		if err := p.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Checkpoints != before {
		t.Fatalf("automatic checkpoint ran under a live view")
	}
	if got := viewFill(t, v, p.PageSize(), pgnos[0]); got != 0x11 {
		t.Fatalf("view tore during deferred checkpointing: got %#x", got)
	}
	v.Release()
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if p.Checkpoints != before+1 {
		t.Fatalf("checkpoint did not run after release: %d", p.Checkpoints)
	}
}
