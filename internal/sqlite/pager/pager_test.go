package pager

import (
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/simfs"
	"repro/internal/storage"
)

func smallProfile() storage.Profile {
	p := storage.OpenSSD()
	p.Nand.Blocks = 128
	p.Nand.PagesPerBlock = 32
	p.Nand.PageSize = 1024
	return p
}

type env struct {
	fs   *simfs.FS
	host *metrics.HostCounters
}

func newEnv(t *testing.T, mode JournalMode) *env {
	t.Helper()
	var fsMode simfs.JournalMode
	transactional := false
	if mode == Off {
		fsMode = simfs.OffXFTL
		transactional = true
	} else {
		fsMode = simfs.Ordered
	}
	dev, err := storage.New(smallProfile(), simclock.New(), storage.Options{Transactional: transactional})
	if err != nil {
		t.Fatal(err)
	}
	host := &metrics.HostCounters{}
	fsys, err := simfs.New(dev, simfs.Config{Mode: fsMode}, host)
	if err != nil {
		t.Fatal(err)
	}
	return &env{fs: fsys, host: host}
}

func openPager(t *testing.T, e *env, mode JournalMode, cache int) *Pager {
	t.Helper()
	p, err := Open(e.fs, "test.db", Config{Mode: mode, CacheSize: cache, CheckpointPages: 50})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return p
}

func allModes() []JournalMode { return []JournalMode{Rollback, WAL, Off} }

// setPage writes a recognizable fill into a page inside a transaction.
func setPage(t *testing.T, p *Pager, pgno Pgno, fill byte) {
	t.Helper()
	pg, err := p.Get(pgno)
	if err != nil {
		t.Fatalf("Get(%d): %v", pgno, err)
	}
	defer pg.Release()
	if err := p.Write(pg); err != nil {
		t.Fatalf("Write(%d): %v", pgno, err)
	}
	for i := 64; i < len(pg.Data()); i++ { // keep page-1 header intact
		pg.Data()[i] = fill
	}
}

func getFill(t *testing.T, p *Pager, pgno Pgno) byte {
	t.Helper()
	pg, err := p.Get(pgno)
	if err != nil {
		t.Fatalf("Get(%d): %v", pgno, err)
	}
	defer pg.Release()
	return pg.Data()[64]
}

// grow allocates n pages inside an open transaction.
func grow(t *testing.T, p *Pager, n int) []Pgno {
	t.Helper()
	var out []Pgno
	for i := 0; i < n; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		out = append(out, pg.Pgno())
		pg.Release()
	}
	return out
}

func TestCommitMakesPagesDurable(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv(t, mode)
			p := openPager(t, e, mode, 100)
			if err := p.Begin(); err != nil {
				t.Fatal(err)
			}
			pgnos := grow(t, p, 3)
			for i, pgno := range pgnos {
				setPage(t, p, pgno, byte(10+i))
			}
			if err := p.Commit(); err != nil {
				t.Fatalf("Commit: %v", err)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			// Reopen and verify.
			p2 := openPager(t, e, mode, 100)
			for i, pgno := range pgnos {
				if got := getFill(t, p2, pgno); got != byte(10+i) {
					t.Errorf("page %d = %d, want %d", pgno, got, 10+i)
				}
			}
			_ = p2.Close()
		})
	}
}

func TestRollbackUndoesChanges(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv(t, mode)
			p := openPager(t, e, mode, 100)
			if err := p.Begin(); err != nil {
				t.Fatal(err)
			}
			pgnos := grow(t, p, 2)
			for _, pgno := range pgnos {
				setPage(t, p, pgno, 1)
			}
			if err := p.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := p.Begin(); err != nil {
				t.Fatal(err)
			}
			for _, pgno := range pgnos {
				setPage(t, p, pgno, 2)
			}
			if err := p.Rollback(); err != nil {
				t.Fatalf("Rollback: %v", err)
			}
			for _, pgno := range pgnos {
				if got := getFill(t, p, pgno); got != 1 {
					t.Errorf("page %d = %d after rollback, want 1", pgno, got)
				}
			}
			_ = p.Close()
		})
	}
}

func TestRollbackUndoesStolenWrites(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv(t, mode)
			p := openPager(t, e, mode, 100)
			if err := p.Begin(); err != nil {
				t.Fatal(err)
			}
			pgnos := grow(t, p, 20)
			for _, pgno := range pgnos {
				setPage(t, p, pgno, 1)
			}
			if err := p.Commit(); err != nil {
				t.Fatal(err)
			}
			_ = p.Close()
			// Tiny cache: updates will be stolen to storage mid-tx.
			p = openPager(t, e, mode, 5)
			if err := p.Begin(); err != nil {
				t.Fatal(err)
			}
			for _, pgno := range pgnos {
				setPage(t, p, pgno, 2)
			}
			if err := p.Rollback(); err != nil {
				t.Fatal(err)
			}
			for _, pgno := range pgnos {
				if got := getFill(t, p, pgno); got != 1 {
					t.Errorf("page %d = %d after rollback with steal, want 1", pgno, got)
				}
			}
			_ = p.Close()
		})
	}
}

func TestCrashMidTransactionRecoversAtomically(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv(t, mode)
			p := openPager(t, e, mode, 100)
			if err := p.Begin(); err != nil {
				t.Fatal(err)
			}
			pgnos := grow(t, p, 10)
			for _, pgno := range pgnos {
				setPage(t, p, pgno, 1)
			}
			if err := p.Commit(); err != nil {
				t.Fatal(err)
			}
			_ = p.Close()

			// Second transaction with a tiny cache (guaranteed steal),
			// crashed before commit.
			p = openPager(t, e, mode, 4)
			if err := p.Begin(); err != nil {
				t.Fatal(err)
			}
			for _, pgno := range pgnos {
				setPage(t, p, pgno, 2)
			}
			e.fs.PowerCut()
			if err := e.fs.Remount(); err != nil {
				t.Fatal(err)
			}
			p2 := openPager(t, e, mode, 100) // runs recovery
			for _, pgno := range pgnos {
				if got := getFill(t, p2, pgno); got != 1 {
					t.Errorf("page %d = %d after crash recovery, want 1", pgno, got)
				}
			}
			_ = p2.Close()
		})
	}
}

func TestCrashAfterCommitKeepsChanges(t *testing.T) {
	// In WAL and Off modes a committed transaction is durable the
	// moment Commit returns. In rollback mode the commit point is the
	// journal *deletion*, whose durability rides the next file-system
	// metadata commit (exactly as on ext4): the final transaction
	// before a crash may legally roll back, so a follow-up transaction
	// is run to carry the deletion to disk, and only the first
	// transaction's durability is asserted.
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv(t, mode)
			p := openPager(t, e, mode, 100)
			if err := p.Begin(); err != nil {
				t.Fatal(err)
			}
			pgnos := grow(t, p, 5)
			for _, pgno := range pgnos {
				setPage(t, p, pgno, 7)
			}
			if err := p.Commit(); err != nil {
				t.Fatal(err)
			}
			if mode == Rollback {
				if err := p.Begin(); err != nil {
					t.Fatal(err)
				}
				setPage(t, p, pgnos[0], 7)
				if err := p.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			e.fs.PowerCut()
			if err := e.fs.Remount(); err != nil {
				t.Fatal(err)
			}
			p2 := openPager(t, e, mode, 100)
			for _, pgno := range pgnos {
				if got := getFill(t, p2, pgno); got != 7 {
					t.Errorf("page %d = %d after crash, want committed 7", pgno, got)
				}
			}
			_ = p2.Close()
		})
	}
}

func TestRollbackJournalLifecycle(t *testing.T) {
	e := newEnv(t, Rollback)
	p := openPager(t, e, Rollback, 100)
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	pgnos := grow(t, p, 2)
	setPage(t, p, pgnos[0], 1)
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.fs.Exists("test.db-journal") {
		t.Error("journal file survived commit")
	}
	_ = p.Close()
}

func TestRollbackModeFsyncPattern(t *testing.T) {
	e := newEnv(t, Rollback)
	p := openPager(t, e, Rollback, 100)
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	pgnos := grow(t, p, 5)
	for _, pg := range pgnos {
		setPage(t, p, pg, 1)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = p.Close()
	// Steady-state transaction: 3 fsyncs (journal data, journal header,
	// database), as in Table 1.
	p = openPager(t, e, Rollback, 100)
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	before := e.host.Snapshot()
	for _, pg := range pgnos {
		setPage(t, p, pg, 2)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	d := e.host.Snapshot().Sub(before)
	if d.Fsyncs != 3 {
		t.Errorf("rollback-mode commit used %d fsyncs, want 3", d.Fsyncs)
	}
	// 5 data pages + header page to the journal, plus header rewrite.
	if d.JournalWrites < 6 || d.JournalWrites > 8 {
		t.Errorf("journal writes = %d, want 6..8", d.JournalWrites)
	}
	// 5 data pages + page 1 to the database.
	if d.DBWrites != 6 {
		t.Errorf("db writes = %d, want 6", d.DBWrites)
	}
	_ = p.Close()
}

func TestWALModeFsyncPattern(t *testing.T) {
	e := newEnv(t, WAL)
	p := openPager(t, e, WAL, 100)
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	pgnos := grow(t, p, 5)
	for _, pg := range pgnos {
		setPage(t, p, pg, 1)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	before := e.host.Snapshot()
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	for _, pg := range pgnos {
		setPage(t, p, pg, 2)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	d := e.host.Snapshot().Sub(before)
	if d.Fsyncs != 1 {
		t.Errorf("wal-mode commit used %d fsyncs, want 1", d.Fsyncs)
	}
	// 5 frames + 1 commit record into the log; nothing to the db.
	if d.JournalWrites != 6 {
		t.Errorf("wal writes = %d, want 6", d.JournalWrites)
	}
	if d.DBWrites != 0 {
		t.Errorf("db writes = %d, want 0 before checkpoint", d.DBWrites)
	}
	_ = p.Close()
}

func TestOffModeFsyncPattern(t *testing.T) {
	e := newEnv(t, Off)
	p := openPager(t, e, Off, 100)
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	pgnos := grow(t, p, 5)
	for _, pg := range pgnos {
		setPage(t, p, pg, 1)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	before := e.host.Snapshot()
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	for _, pg := range pgnos {
		setPage(t, p, pg, 2)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	d := e.host.Snapshot().Sub(before)
	if d.Fsyncs != 1 {
		t.Errorf("off-mode commit used %d fsyncs, want 1", d.Fsyncs)
	}
	if d.JournalWrites != 0 {
		t.Errorf("off mode wrote %d journal pages, want 0", d.JournalWrites)
	}
	if d.DBWrites != 5 {
		t.Errorf("db writes = %d, want 5 (no header churn, no double writes)", d.DBWrites)
	}
	_ = p.Close()
}

func TestWALCheckpointMovesPagesToDB(t *testing.T) {
	e := newEnv(t, WAL)
	p := openPager(t, e, WAL, 100)
	// CheckpointPages is 50 in the test config; run enough commits.
	var pgnos []Pgno
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	pgnos = grow(t, p, 10)
	for _, pg := range pgnos {
		setPage(t, p, pg, 1)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		if err := p.Begin(); err != nil {
			t.Fatal(err)
		}
		for _, pg := range pgnos {
			setPage(t, p, pg, byte(round))
		}
		if err := p.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Checkpoints == 0 {
		t.Error("no checkpoint occurred despite exceeding the threshold")
	}
	if got := e.host.Snapshot().DBWrites; got == 0 {
		t.Error("checkpoint wrote nothing to the database file")
	}
	_ = p.Close()
}

func TestFreelistReuse(t *testing.T) {
	e := newEnv(t, Rollback)
	p := openPager(t, e, Rollback, 100)
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	pgnos := grow(t, p, 3)
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(pgnos[1]); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	sizeBefore := p.NPages()
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if pg.Pgno() != pgnos[1] {
		t.Errorf("Allocate = %d, want reused %d", pg.Pgno(), pgnos[1])
	}
	pg.Release()
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if p.NPages() != sizeBefore {
		t.Errorf("db grew to %d despite freelist reuse", p.NPages())
	}
	_ = p.Close()
}

func TestFreelistSurvivesReopen(t *testing.T) {
	e := newEnv(t, Rollback)
	p := openPager(t, e, Rollback, 100)
	_ = p.Begin()
	pgnos := grow(t, p, 3)
	_ = p.Commit()
	_ = p.Begin()
	if err := p.Free(pgnos[0]); err != nil {
		t.Fatal(err)
	}
	_ = p.Commit()
	_ = p.Close()
	p2 := openPager(t, e, Rollback, 100)
	_ = p2.Begin()
	pg, err := p2.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if pg.Pgno() != pgnos[0] {
		t.Errorf("after reopen Allocate = %d, want %d", pg.Pgno(), pgnos[0])
	}
	pg.Release()
	_ = p2.Rollback()
	_ = p2.Close()
}

func TestSchemaRootPersists(t *testing.T) {
	e := newEnv(t, Rollback)
	p := openPager(t, e, Rollback, 100)
	_ = p.Begin()
	if err := p.SetSchemaRoot(42); err != nil {
		t.Fatal(err)
	}
	_ = p.Commit()
	_ = p.Close()
	p2 := openPager(t, e, Rollback, 100)
	if p2.SchemaRoot() != 42 {
		t.Errorf("SchemaRoot = %d, want 42", p2.SchemaRoot())
	}
	_ = p2.Close()
}

func TestAllocationRollsBack(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv(t, mode)
			p := openPager(t, e, mode, 100)
			_ = p.Begin()
			grow(t, p, 2)
			_ = p.Commit()
			size := p.NPages()
			_ = p.Begin()
			grow(t, p, 5)
			if err := p.Rollback(); err != nil {
				t.Fatal(err)
			}
			if p.NPages() != size {
				t.Errorf("NPages = %d after rollback, want %d", p.NPages(), size)
			}
			_ = p.Close()
		})
	}
}

func TestTxStateErrors(t *testing.T) {
	e := newEnv(t, Rollback)
	p := openPager(t, e, Rollback, 100)
	if err := p.Commit(); !errors.Is(err, ErrNoTx) {
		t.Errorf("Commit outside tx = %v, want ErrNoTx", err)
	}
	if _, err := p.Allocate(); !errors.Is(err, ErrNoTx) {
		t.Errorf("Allocate outside tx = %v, want ErrNoTx", err)
	}
	_ = p.Begin()
	if err := p.Begin(); !errors.Is(err, ErrInTx) {
		t.Errorf("nested Begin = %v, want ErrInTx", err)
	}
	_ = p.Rollback()
	if _, err := p.Get(999); !errors.Is(err, ErrBadPgno) {
		t.Errorf("Get(999) = %v, want ErrBadPgno", err)
	}
	_ = p.Close()
}

func TestWALReadsOwnUncommittedFrames(t *testing.T) {
	e := newEnv(t, WAL)
	p := openPager(t, e, WAL, 4) // tiny cache: frames stolen to the WAL
	_ = p.Begin()
	pgnos := grow(t, p, 10)
	for i, pg := range pgnos {
		setPage(t, p, pg, byte(50+i))
	}
	// Re-read everything while still in the transaction.
	for i, pg := range pgnos {
		if got := getFill(t, p, pg); got != byte(50+i) {
			t.Errorf("own read of page %d = %d, want %d", pg, got, 50+i)
		}
	}
	_ = p.Commit()
	_ = p.Close()
}

func TestWALLargeTransactionCommitChain(t *testing.T) {
	// A transaction with more frames than one commit record holds
	// (page size 1024 -> 127 entries/record) must survive reopen: the
	// commit record is a chain terminated by a flagged final page.
	e := newEnv(t, WAL)
	p := openPager(t, e, WAL, 50)
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	pgnos := grow(t, p, 300)
	for i, pg := range pgnos {
		setPage(t, p, pg, byte(i%200+1))
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = p.Close()
	p2 := openPager(t, e, WAL, 400)
	defer p2.Close()
	for i, pg := range pgnos {
		if got := getFill(t, p2, pg); got != byte(i%200+1) {
			t.Fatalf("page %d = %d, want %d (commit chain lost frames)", pg, got, i%200+1)
		}
	}
}

func TestWALCrashMidCommitChainIsAtomic(t *testing.T) {
	// Crash before the final chain page: the whole transaction must
	// vanish. Simulated by writing many frames then crashing before
	// Commit (the chain never gets its final page).
	e := newEnv(t, WAL)
	p := openPager(t, e, WAL, 20) // steal pushes frames to the WAL early
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	pgnos := grow(t, p, 50)
	for _, pg := range pgnos {
		setPage(t, p, pg, 1)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	for _, pg := range pgnos {
		setPage(t, p, pg, 2)
	}
	e.fs.PowerCut()
	if err := e.fs.Remount(); err != nil {
		t.Fatal(err)
	}
	p2 := openPager(t, e, WAL, 400)
	defer p2.Close()
	for _, pg := range pgnos {
		if got := getFill(t, p2, pg); got != 1 {
			t.Fatalf("page %d = %d after crash, want 1", pg, got)
		}
	}
}
