// Package pager implements the page cache and transaction machinery of
// the simulated SQLite engine: a fixed-size buffer pool managed with
// the steal and force policies the paper describes (§2.1), and the
// three journal modes whose I/O behaviour the paper benchmarks:
//
//   - Rollback: the original content of each updated page is copied to
//     a per-transaction journal file before the database is changed;
//     commit force-writes the database and deletes the journal. Three
//     fsync calls per transaction (journal data, journal header,
//     database), plus journal file creation/deletion metadata churn.
//   - WAL: new page versions are appended to a shared log file with one
//     fsync per commit; a checkpoint copies committed pages back into
//     the database every CheckpointPages log pages.
//   - Off: journaling is disabled and atomicity is delegated to an
//     X-FTL device through the file system (write(t,p) on write-back,
//     commit(t) on fsync, abort(t) via ioctl).
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/simfs"
	"repro/internal/trace"
)

// Pgno is a 1-based database page number, page 1 being the header.
type Pgno uint32

// JournalMode selects the atomic-commit strategy.
type JournalMode int

// Journal modes.
const (
	Rollback JournalMode = iota
	WAL
	Off
)

func (m JournalMode) String() string {
	switch m {
	case Rollback:
		return "rollback"
	case WAL:
		return "wal"
	case Off:
		return "off"
	default:
		return fmt.Sprintf("JournalMode(%d)", int(m))
	}
}

// Errors returned by the pager.
var (
	ErrNoTx       = errors.New("pager: no transaction is active")
	ErrInTx       = errors.New("pager: a transaction is already active")
	ErrBadPgno    = errors.New("pager: page number out of range")
	ErrPinned     = errors.New("pager: all cache pages are pinned")
	ErrNotDirty   = errors.New("pager: page was not made writable")
	ErrCorrupt    = errors.New("pager: file is corrupt")
	ErrClosedPage = errors.New("pager: page used after release")
	ErrReadOnly   = errors.New("pager: read-only snapshot session")
)

// Config tunes the pager.
type Config struct {
	Mode JournalMode
	// CacheSize is the buffer-pool capacity in pages (default 2000,
	// SQLite's historical default).
	CacheSize int
	// CheckpointPages triggers a WAL checkpoint when the log reaches
	// this many pages (default 1000, as in the paper §6.3.1).
	CheckpointPages int64
}

const (
	headerMagic  = 0x58464442 // "XFDB"
	walMagic     = 0x57414C46 // "WALF"
	jnlMagic     = 0x4A4E4C46 // "JNLF"
	maxFreelist  = 1500       // inline freelist capacity in page 1
	headerFixed  = 32         // bytes of page-1 header before the freelist
	frameHdrSize = 8          // per-entry bytes in a WAL commit record
	// walFinalFlag marks the last page of a commit-record chain; only
	// its presence commits the chain's transaction.
	walFinalFlag = 0x80000000
)

// Page is one pinned buffer-pool page. Callers must Release every page
// they Get, and must call Write before mutating Data.
type Page struct {
	pgno  Pgno
	data  []byte
	dirty bool
	pins  int
	pager *Pager
}

// Pgno returns the page's number.
func (pg *Page) Pgno() Pgno { return pg.pgno }

// Data returns the page payload. Mutating it without Write first is a
// bug that the rollback path will not protect against.
func (pg *Page) Data() []byte { return pg.data }

// Pager manages one database file. It is not safe for concurrent use —
// SQLite serializes writers at database granularity (§6.2), and so do
// the workloads in this repository.
type Pager struct {
	fs   *simfs.FS
	name string
	file *simfs.File // nil in snapshot mode
	cfg  Config

	// snap, when set, serves every stable-storage read from a pinned
	// file-system snapshot; the pager is then read-only (Write, Allocate
	// and Free fail with ErrReadOnly) and file is nil.
	snap     *simfs.Snapshot
	readOnly bool

	cache map[Pgno]*Page
	clock []Pgno // second-chance eviction order

	nPages   Pgno   // database size in pages (>= 1 once open)
	freelist []Pgno // reusable page numbers, persisted in page 1
	schema   uint32 // engine-owned root pointer persisted in page 1

	inTx      bool
	mutated   bool // any Write/Allocate/Free this transaction
	dirty     map[Pgno]bool
	journaled map[Pgno][]byte // RBJ: original images of this tx
	jOrder    []Pgno
	jFile     *simfs.File
	jSynced   int // journal images already synced to storage
	stolen    map[Pgno]bool

	// Begin-time snapshot for rollback of allocator state.
	txNPages   Pgno
	txFreelist []Pgno
	txSchema   uint32

	// WAL state.
	walFile   *simfs.File
	walIndex  map[Pgno]int64 // pgno -> wal file page of latest committed version
	txFrames  map[Pgno]int64 // this transaction's own frames
	walHead   int64          // next wal file page to write
	ckptAccum int64          // wal pages since last checkpoint

	// WAL concurrent-reader state. walMu makes the committed frame
	// index (and the checkpoint that rewrites what it points at) atomic
	// with respect to CaptureWALView, the one consumer on a foreign
	// goroutine; walReaders counts live views, which veto checkpoints —
	// a checkpoint overwrites database pages in place and truncates the
	// log, either of which would tear a captured view.
	walMu      sync.Mutex
	walReaders int

	// view, when set, serves every stable-storage read of this
	// (read-only) pager from a captured WAL view: the committed frame
	// index plus device page tables as of the capture.
	view *WALView

	// Stats.
	Commits     int64
	Rollbacks   int64
	Checkpoints int64
	// CkptDeferred counts checkpoints skipped because reader views were
	// live; the trigger re-arms on the next commit. Guarded by walMu,
	// like Checkpoints, so gauges can sample it mid-run.
	CkptDeferred int64

	txStart time.Duration // virtual time of Begin, for the KTxn span
}

// tracer returns the stack's tracer (nil-safe: a nil tracer no-ops).
func (p *Pager) tracer() *trace.Tracer { return p.fs.Tracer() }

// sess reports the session id this pager's I/O is attributed to: the
// file system's current context for a writer, the snapshot's for a
// snapshot reader.
func (p *Pager) sess() uint64 {
	if p.snap != nil {
		return p.snap.Session()
	}
	if p.view != nil {
		return p.view.rd.Session()
	}
	return p.fs.IOSession()
}

// Open creates or opens a database file and runs crash recovery for the
// configured journal mode (hot rollback journal playback, or WAL scan
// and checkpoint).
func Open(fsys *simfs.FS, name string, cfg Config) (*Pager, error) {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 2000
	}
	if cfg.CheckpointPages <= 0 {
		cfg.CheckpointPages = 1000
	}
	p := &Pager{
		fs:    fsys,
		name:  name,
		cfg:   cfg,
		cache: make(map[Pgno]*Page),
		dirty: make(map[Pgno]bool),
	}
	var err error
	if fsys.Exists(name) {
		p.file, err = fsys.Open(name)
	} else {
		p.file, err = fsys.Create(name, simfs.RoleData)
	}
	if err != nil {
		return nil, err
	}
	if err := p.loadHeader(); err != nil {
		return nil, err
	}
	// Mode-specific attach + recovery.
	switch cfg.Mode {
	case Rollback:
		if err := p.recoverRollback(); err != nil {
			return nil, err
		}
	case WAL:
		if err := p.attachWAL(); err != nil {
			return nil, err
		}
	case Off:
		// The device already recovered atomically; nothing to do.
	}
	return p, nil
}

// OpenSnapshot opens a read-only pager whose every stable-storage read
// is served from a file-system snapshot: the database exactly as of the
// snapshot's commit point, unaffected by any concurrent writer. The
// journal mode is forced to Off (snapshots exist only over an X-FTL
// device) and no recovery runs — a snapshot is committed state by
// construction. The snapshot's lifetime is owned by the caller; Close
// does not release it.
func OpenSnapshot(fsys *simfs.FS, name string, snap *simfs.Snapshot, cfg Config) (*Pager, error) {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 2000
	}
	cfg.Mode = Off
	p := &Pager{
		fs:       fsys,
		name:     name,
		cfg:      cfg,
		cache:    make(map[Pgno]*Page),
		dirty:    make(map[Pgno]bool),
		snap:     snap,
		readOnly: true,
	}
	if err := p.loadHeader(); err != nil {
		return nil, err
	}
	return p, nil
}

// WALView is an immutable committed snapshot of a WAL-mode database:
// the committed frame index plus the device page tables of the
// database and log files, captured atomically against the writer's
// commit path. A view reads the last committed transaction as of its
// capture — later commits only append frames and update the live
// index, never touching what the view references — and it holds off
// checkpoints (which WOULD touch them) until released. Views cost no
// device pinning: unlike X-FTL snapshots, the referenced pages stay
// current mappings for the view's whole lifetime.
type WALView struct {
	pager    *Pager
	db       []int64        // database file page table at capture
	wal      []int64        // log file page table at capture
	idx      map[Pgno]int64 // committed pgno -> wal frame at capture
	rd       *simfs.RawReader
	released bool
}

// CaptureWALView pins the committed WAL state for a concurrent reader.
// Safe to call from any goroutine while the writer runs; only the
// short index-copy critical section serializes with commits.
func (p *Pager) CaptureWALView() (*WALView, error) {
	if p.cfg.Mode != WAL {
		return nil, fmt.Errorf("pager: WAL views need WAL mode, have %v", p.cfg.Mode)
	}
	p.walMu.Lock()
	defer p.walMu.Unlock()
	idx := make(map[Pgno]int64, len(p.walIndex))
	for pgno, frame := range p.walIndex {
		idx[pgno] = frame
	}
	db, _ := p.fs.FileImage(p.name)
	wal, _ := p.fs.FileImage(p.walName())
	p.walReaders++
	return &WALView{pager: p, db: db, wal: wal, idx: idx, rd: p.fs.NewRawReader()}, nil
}

// Release lets the writer checkpoint again once no views remain.
// Releasing twice is a no-op.
func (v *WALView) Release() {
	if v.released {
		return
	}
	v.released = true
	v.pager.walMu.Lock()
	v.pager.walReaders--
	v.pager.walMu.Unlock()
}

// SetPipelined selects asynchronous device reads for the view.
func (v *WALView) SetPipelined(on bool) { v.rd.SetPipelined(on) }

// SetIOContext attributes the view's reads to a session id and stat
// sets (see Snapshot.SetIOContext).
func (v *WALView) SetIOContext(sess uint64, obs ...*metrics.IOStats) {
	v.rd.SetIOContext(sess, obs...)
}

// SetIOReq tags the view's reads with a serving-tier request id.
func (v *WALView) SetIOReq(req uint64) { v.rd.SetIOReq(req) }

// empty reports whether the view holds no committed database at all.
func (v *WALView) empty() bool {
	if len(v.db) > 0 {
		return false
	}
	_, ok := v.idx[1]
	return !ok
}

// readPage serves one database page from the view: the committed WAL
// frame if the page was in the log at capture, the database file page
// otherwise, zeros for holes.
func (v *WALView) readPage(pgno Pgno, buf []byte) error {
	if frame, ok := v.idx[pgno]; ok {
		if frame >= int64(len(v.wal)) || v.wal[frame] < 0 {
			return fmt.Errorf("%w: wal frame %d outside captured log (%d pages)", ErrCorrupt, frame, len(v.wal))
		}
		return v.rd.ReadLPN(v.wal[frame], buf)
	}
	if int64(pgno-1) < int64(len(v.db)) {
		if lpn := v.db[pgno-1]; lpn >= 0 {
			return v.rd.ReadLPN(lpn, buf)
		}
	}
	clear(buf)
	return nil
}

// OpenWALReader opens a read-only pager over a captured WAL view: the
// reader's cache warms against immutable committed state while the
// writer keeps appending to the live log. No recovery runs — the view
// is committed state by construction. The view's lifetime is owned by
// the caller; Close does not release it.
func OpenWALReader(fsys *simfs.FS, name string, view *WALView, cfg Config) (*Pager, error) {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 2000
	}
	cfg.Mode = WAL
	p := &Pager{
		fs:       fsys,
		name:     name,
		cfg:      cfg,
		cache:    make(map[Pgno]*Page),
		dirty:    make(map[Pgno]bool),
		view:     view,
		readOnly: true,
	}
	if err := p.loadHeader(); err != nil {
		return nil, err
	}
	return p, nil
}

// Name returns the database file name.
func (p *Pager) Name() string { return p.name }

// Mode returns the journal mode.
func (p *Pager) Mode() JournalMode { return p.cfg.Mode }

// NPages reports the database size in pages.
func (p *Pager) NPages() Pgno { return p.nPages }

// PageSize reports the page size in bytes.
func (p *Pager) PageSize() int { return p.fs.PageSize() }

// SchemaRoot returns the engine-owned root pointer from page 1.
func (p *Pager) SchemaRoot() uint32 { return p.schema }

// SetSchemaRoot stores the engine-owned root pointer; it becomes
// durable with the enclosing transaction.
func (p *Pager) SetSchemaRoot(v uint32) error {
	if !p.inTx {
		return ErrNoTx
	}
	p.schema = v
	return p.dirtyHeader()
}

// jnlName returns the rollback journal file name.
func (p *Pager) jnlName() string { return p.name + "-journal" }

// walName returns the write-ahead log file name.
func (p *Pager) walName() string { return p.name + "-wal" }

// loadHeader reads page 1, initializing a fresh database if the file is
// empty.
func (p *Pager) loadHeader() error {
	switch {
	case p.view != nil:
		if p.view.empty() {
			p.nPages = 1
			return nil
		}
	case p.snap != nil:
		if p.snap.Pages(p.name) == 0 {
			p.nPages = 1
			return nil
		}
	default:
		if p.file.Pages() == 0 {
			p.nPages = 1
			return nil
		}
	}
	buf := make([]byte, p.PageSize())
	if err := p.readDBPage(1, buf); err != nil {
		return err
	}
	return p.decodeHeader(buf)
}

func (p *Pager) decodeHeader(buf []byte) error {
	if binary.BigEndian.Uint32(buf[0:]) != headerMagic {
		return fmt.Errorf("%w: bad header magic", ErrCorrupt)
	}
	p.nPages = Pgno(binary.BigEndian.Uint32(buf[4:]))
	p.schema = binary.BigEndian.Uint32(buf[8:])
	n := int(binary.BigEndian.Uint32(buf[12:]))
	if n > maxFreelist {
		return fmt.Errorf("%w: freelist count %d", ErrCorrupt, n)
	}
	p.freelist = p.freelist[:0]
	for i := 0; i < n; i++ {
		p.freelist = append(p.freelist, Pgno(binary.BigEndian.Uint32(buf[headerFixed+4*i:])))
	}
	return nil
}

func (p *Pager) encodeHeader(buf []byte) {
	clear(buf)
	binary.BigEndian.PutUint32(buf[0:], headerMagic)
	binary.BigEndian.PutUint32(buf[4:], uint32(p.nPages))
	binary.BigEndian.PutUint32(buf[8:], p.schema)
	binary.BigEndian.PutUint32(buf[12:], uint32(len(p.freelist)))
	for i, f := range p.freelist {
		if headerFixed+4*i+4 > len(buf) {
			break
		}
		binary.BigEndian.PutUint32(buf[headerFixed+4*i:], uint32(f))
	}
}

// dirtyHeader marks page 1 dirty with freshly encoded header state.
func (p *Pager) dirtyHeader() error {
	pg, err := p.Get(1)
	if err != nil {
		return err
	}
	defer pg.Release()
	if err := p.Write(pg); err != nil {
		return err
	}
	p.encodeHeader(pg.Data())
	return nil
}

// readDBPage fetches a page image from stable storage, consulting the
// WAL first in WAL mode (the paper's "reading the two files" overhead).
func (p *Pager) readDBPage(pgno Pgno, buf []byte) error {
	if p.view != nil {
		return p.view.readPage(pgno, buf)
	}
	if p.cfg.Mode == WAL {
		if idx, ok := p.txFrames[pgno]; ok {
			return p.walFile.ReadPage(idx, buf)
		}
		if idx, ok := p.walIndex[pgno]; ok {
			return p.walFile.ReadPage(idx, buf)
		}
	}
	if p.snap != nil {
		if int64(pgno-1) >= p.snap.Pages(p.name) {
			clear(buf)
			return nil
		}
		return p.snap.ReadPage(p.name, int64(pgno-1), buf)
	}
	if int64(pgno-1) >= p.file.Pages() {
		clear(buf)
		return nil
	}
	return p.file.ReadPage(int64(pgno-1), buf)
}

// Get pins a page in the cache, reading it from storage on a miss.
func (p *Pager) Get(pgno Pgno) (*Page, error) {
	if pgno < 1 || pgno > p.nPages {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadPgno, pgno, p.nPages)
	}
	if pg, ok := p.cache[pgno]; ok {
		pg.pins++
		return pg, nil
	}
	if err := p.makeRoom(); err != nil {
		return nil, err
	}
	buf := make([]byte, p.PageSize())
	tr := p.tracer()
	rdStart := tr.Now()
	if err := p.readDBPage(pgno, buf); err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Record(trace.Event{Layer: trace.LPager, Kind: trace.KPageRead,
			Start: rdStart, Dur: tr.Now() - rdStart,
			Addr: int64(pgno), Sess: p.sess()})
	}
	if pgno == 1 && binary.BigEndian.Uint32(buf[0:]) != headerMagic {
		// Fresh database: no stable header exists yet; synthesize the
		// current in-memory header state.
		p.encodeHeader(buf)
	}
	pg := &Page{pgno: pgno, data: buf, pins: 1, pager: p}
	p.cache[pgno] = pg
	p.clock = append(p.clock, pgno)
	return pg, nil
}

// Release unpins a page obtained from Get or Allocate.
func (pg *Page) Release() {
	if pg.pins > 0 {
		pg.pins--
	}
}

// makeRoom evicts unpinned pages until the cache is under its limit.
// Dirty evictions are the steal policy: uncommitted content reaches
// storage under whatever protection the journal mode provides.
func (p *Pager) makeRoom() error {
	for len(p.cache) >= p.cfg.CacheSize {
		evicted := false
		keep := p.clock[:0]
		for i, pgno := range p.clock {
			pg, ok := p.cache[pgno]
			if !ok {
				continue
			}
			if evicted || pg.pins > 0 {
				keep = append(keep, pgno)
				continue
			}
			if pg.dirty {
				if err := p.stealOut(pg); err != nil {
					return err
				}
			}
			delete(p.cache, pgno)
			evicted = true
			_ = i
		}
		p.clock = keep
		if !evicted {
			return ErrPinned
		}
	}
	return nil
}

// stealOut writes one uncommitted dirty page to storage (steal policy).
func (p *Pager) stealOut(pg *Page) error {
	switch p.cfg.Mode {
	case Rollback:
		// The journal must be durable before an uncommitted page may
		// overwrite the database (undo rule).
		if err := p.syncJournalImages(); err != nil {
			return err
		}
		if err := p.file.WritePage(int64(pg.pgno-1), pg.data); err != nil {
			return err
		}
	case WAL:
		if err := p.appendFrame(pg.pgno, pg.data); err != nil {
			return err
		}
	case Off:
		// The file system forwards this as write(t,p); the device keeps
		// it invisible and revocable.
		if err := p.file.WritePage(int64(pg.pgno-1), pg.data); err != nil {
			return err
		}
	}
	if p.stolen == nil {
		p.stolen = make(map[Pgno]bool)
	}
	p.stolen[pg.pgno] = true
	pg.dirty = false
	delete(p.dirty, pg.pgno)
	return nil
}

// Begin starts a write transaction.
func (p *Pager) Begin() error {
	if p.inTx {
		return ErrInTx
	}
	p.inTx = true
	p.mutated = false
	p.txStart = p.tracer().Now()
	p.txNPages = p.nPages
	p.txFreelist = append([]Pgno(nil), p.freelist...)
	p.txSchema = p.schema
	p.journaled = make(map[Pgno][]byte)
	p.jOrder = p.jOrder[:0]
	p.jSynced = 0
	p.stolen = make(map[Pgno]bool)
	if p.cfg.Mode == WAL {
		p.txFrames = make(map[Pgno]int64)
	}
	return nil
}

// InTx reports whether a transaction is active.
func (p *Pager) InTx() bool { return p.inTx }

// Write declares intent to modify a pinned page. In rollback mode the
// original image is captured for the journal on first touch; in every
// mode the page joins the dirty set. SQLite's rollback mode also
// touches the header page each transaction (change counter), which is
// reproduced here.
func (p *Pager) Write(pg *Page) error {
	if !p.inTx {
		return ErrNoTx
	}
	if p.readOnly {
		return ErrReadOnly
	}
	p.mutated = true
	if p.cfg.Mode == Rollback {
		if _, ok := p.journaled[pg.pgno]; !ok {
			orig := make([]byte, len(pg.data))
			copy(orig, pg.data)
			p.journaled[pg.pgno] = orig
			p.jOrder = append(p.jOrder, pg.pgno)
		}
		if pg.pgno != 1 {
			if hdr, err := p.Get(1); err == nil {
				if _, ok := p.journaled[1]; !ok {
					orig := make([]byte, len(hdr.data))
					copy(orig, hdr.data)
					p.journaled[1] = orig
					p.jOrder = append(p.jOrder, 1)
				}
				hdr.dirty = true
				p.dirty[1] = true
				hdr.Release()
			}
		}
	}
	if tr := p.tracer(); tr != nil && !p.dirty[pg.pgno] {
		// First dirty touch this transaction: one point event per page.
		tr.Record(trace.Event{Layer: trace.LPager, Kind: trace.KPageWrite,
			Start: tr.Now(), Addr: int64(pg.pgno), Sess: p.sess()})
	}
	pg.dirty = true
	p.dirty[pg.pgno] = true
	return nil
}

// Allocate produces a fresh writable page, reusing the freelist first.
func (p *Pager) Allocate() (*Page, error) {
	if !p.inTx {
		return nil, ErrNoTx
	}
	if p.readOnly {
		return nil, ErrReadOnly
	}
	p.mutated = true
	var pgno Pgno
	if n := len(p.freelist); n > 0 {
		pgno = p.freelist[n-1]
		p.freelist = p.freelist[:n-1]
	} else {
		p.nPages++
		pgno = p.nPages
	}
	if err := p.dirtyHeader(); err != nil {
		return nil, err
	}
	if err := p.makeRoom(); err != nil {
		return nil, err
	}
	// A fresh page never needs a disk read or an undo image.
	if old, ok := p.cache[pgno]; ok {
		clear(old.data)
		old.pins++
		if err := p.Write(old); err != nil {
			old.Release()
			return nil, err
		}
		return old, nil
	}
	pg := &Page{pgno: pgno, data: make([]byte, p.PageSize()), pins: 1, pager: p}
	p.cache[pgno] = pg
	p.clock = append(p.clock, pgno)
	if err := p.Write(pg); err != nil {
		pg.Release()
		return nil, err
	}
	return pg, nil
}

// Free returns a page to the freelist for reuse by later allocations.
func (p *Pager) Free(pgno Pgno) error {
	if !p.inTx {
		return ErrNoTx
	}
	if pgno <= 1 || pgno > p.nPages {
		return fmt.Errorf("%w: free %d", ErrBadPgno, pgno)
	}
	if p.readOnly {
		return ErrReadOnly
	}
	p.mutated = true
	if len(p.freelist) < maxFreelist {
		p.freelist = append(p.freelist, pgno)
	}
	return p.dirtyHeader()
}

// ensureJournal lazily creates the per-transaction rollback journal
// file and writes its header page (original database size, magic).
func (p *Pager) ensureJournal() error {
	if p.jFile != nil {
		return nil
	}
	name := p.jnlName()
	if p.fs.Exists(name) {
		if err := p.fs.Remove(name); err != nil {
			return err
		}
	}
	f, err := p.fs.Create(name, simfs.RoleJournal)
	if err != nil {
		return err
	}
	p.jFile = f
	hdr := make([]byte, p.PageSize())
	binary.BigEndian.PutUint32(hdr[0:], jnlMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(p.txNPages))
	binary.BigEndian.PutUint32(hdr[8:], 0) // image count, updated at sync
	return f.WritePage(0, hdr)
}

// syncJournalImages makes every captured original image durable: the
// undo data is written and fsynced, then the header (with the final
// image count) is written and fsynced separately — the paper's two
// journal fsyncs per transaction (§6.3.1).
func (p *Pager) syncJournalImages() error {
	if len(p.jOrder) == 0 {
		return nil
	}
	if err := p.ensureJournal(); err != nil {
		return err
	}
	for ; p.jSynced < len(p.jOrder); p.jSynced++ {
		pgno := p.jOrder[p.jSynced]
		img := p.journaled[pgno]
		page := make([]byte, p.PageSize())
		copy(page, img)
		// Journal image pages carry their pgno in the first bytes of a
		// trailer-free simulation: recovery reads pgnos from the header
		// page instead, so the payload is stored verbatim.
		if err := p.jFile.WritePage(int64(1+p.jSynced), page); err != nil {
			return err
		}
	}
	if err := p.jFile.Fsync(); err != nil {
		return err
	}
	// Header rewrite with the image count and pgno directory.
	hdr := make([]byte, p.PageSize())
	binary.BigEndian.PutUint32(hdr[0:], jnlMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(p.txNPages))
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(p.jOrder)))
	for i, pgno := range p.jOrder {
		if 12+4*i+4 > len(hdr) {
			break
		}
		binary.BigEndian.PutUint32(hdr[12+4*i:], uint32(pgno))
	}
	if err := p.jFile.WritePage(0, hdr); err != nil {
		return err
	}
	return p.jFile.Fsync()
}

// attachWAL opens (or creates) the log file and recovers committed
// frames after a crash by scanning for commit records.
func (p *Pager) attachWAL() error {
	name := p.walName()
	var err error
	if p.fs.Exists(name) {
		p.walFile, err = p.fs.Open(name)
	} else {
		p.walFile, err = p.fs.Create(name, simfs.RoleJournal)
	}
	if err != nil {
		return err
	}
	p.walIndex = make(map[Pgno]int64)
	p.walHead = 0
	// Scan: commit records are identified by magic and enumerate the
	// (pgno, framePage) pairs of their transaction. Multi-page record
	// chains apply only when the flagged final page is present, so a
	// crash mid-chain leaves the transaction uncommitted.
	buf := make([]byte, p.PageSize())
	n := p.walFile.Pages()
	pending := make(map[Pgno]int64)
	for i := int64(0); i < n; i++ {
		if err := p.walFile.ReadPage(i, buf); err != nil {
			return err
		}
		if binary.BigEndian.Uint32(buf[0:]) != walMagic {
			continue
		}
		raw := binary.BigEndian.Uint32(buf[4:])
		final := raw&walFinalFlag != 0
		cnt := int(raw &^ walFinalFlag)
		for e := 0; e < cnt; e++ {
			off := 8 + e*frameHdrSize
			if off+frameHdrSize > len(buf) {
				break
			}
			pgno := Pgno(binary.BigEndian.Uint32(buf[off:]))
			frame := int64(binary.BigEndian.Uint32(buf[off+4:]))
			pending[pgno] = frame
		}
		if final {
			for pgno, frame := range pending {
				p.walIndex[pgno] = frame
			}
			clear(pending)
			p.walHead = i + 1
		}
	}
	if len(p.walIndex) > 0 {
		// Database size may have grown inside the WAL: adopt the max.
		for pgno := range p.walIndex {
			if pgno > p.nPages {
				p.nPages = pgno
			}
		}
		// Page 1 in the WAL carries newer header state.
		if idx, ok := p.walIndex[1]; ok {
			if err := p.walFile.ReadPage(idx, buf); err != nil {
				return err
			}
			if err := p.decodeHeader(buf); err != nil {
				return err
			}
		}
		// The paper measures WAL restart time as the cost of copying
		// the committed pages back into the database (§6.4). No views
		// can exist at open, so the checkpoint runs unguarded.
		if err := p.checkpointLocked(); err != nil {
			return err
		}
	}
	return nil
}

// appendFrame writes one page version into the WAL (uncommitted until a
// commit record covers it).
func (p *Pager) appendFrame(pgno Pgno, data []byte) error {
	if err := p.walFile.WritePage(p.walHead, data); err != nil {
		return err
	}
	p.txFrames[pgno] = p.walHead
	p.walHead++
	return nil
}

// Commit makes the transaction durable per the journal mode and applies
// the force policy: every dirty page is written to stable storage.
func (p *Pager) Commit() error {
	if !p.inTx {
		return ErrNoTx
	}
	if !p.mutated {
		// Read-only transaction: no journal, no force, no fsync.
		p.inTx = false
		p.journaled = nil
		p.stolen = nil
		p.txFrames = nil
		p.noteTxn(trace.KTxn, 1)
		return nil
	}
	switch p.cfg.Mode {
	case Rollback:
		if err := p.commitRollback(); err != nil {
			return err
		}
	case WAL:
		if err := p.commitWAL(); err != nil {
			return err
		}
	case Off:
		if err := p.commitOff(); err != nil {
			return err
		}
	}
	p.inTx = false
	p.journaled = nil
	p.stolen = nil
	p.Commits++
	p.noteTxn(trace.KTxn, 1)
	return nil
}

// noteTxn records the transaction span that started at Begin. aux is 1
// for a commit, 0 for a rollback.
func (p *Pager) noteTxn(k trace.Kind, aux int64) {
	tr := p.tracer()
	if tr == nil {
		return
	}
	tr.Record(trace.Event{Layer: trace.LSQL, Kind: k,
		Start: p.txStart, Dur: tr.Now() - p.txStart,
		Aux: aux, Sess: p.sess()})
}

func (p *Pager) commitRollback() error {
	// 1. Undo images durable (two fsyncs: data then header).
	if err := p.syncJournalImages(); err != nil {
		return err
	}
	// 2. Force: all dirty pages into the database file, then fsync.
	if err := p.flushDirtyToDB(); err != nil {
		return err
	}
	if err := p.file.Fsync(); err != nil {
		return err
	}
	// 3. Commit point: delete the journal.
	if p.jFile != nil {
		_ = p.jFile.Close()
		p.jFile = nil
		if err := p.fs.Remove(p.jnlName()); err != nil {
			return err
		}
	}
	return nil
}

func (p *Pager) commitWAL() error {
	// Force: every dirty page becomes a WAL frame, then one commit
	// record enumerating the transaction's frames, then one fsync.
	for pgno := range p.dirty {
		pg := p.cache[pgno]
		if pg == nil || !pg.dirty {
			continue
		}
		if err := p.appendFrame(pgno, pg.data); err != nil {
			return err
		}
		pg.dirty = false
	}
	clear(p.dirty)
	if len(p.txFrames) == 0 {
		p.txFrames = nil
		return nil // read-only transaction
	}
	// The commit record enumerates every frame of the transaction. A
	// large transaction spans several record pages, chained so that
	// only the final page (flagged) commits the whole group — recovery
	// discards an unterminated chain, keeping commit atomic.
	type entry struct {
		pgno  Pgno
		frame int64
	}
	entries := make([]entry, 0, len(p.txFrames))
	for pgno, frame := range p.txFrames {
		entries = append(entries, entry{pgno, frame})
	}
	perPage := (p.PageSize() - 8) / frameHdrSize
	for start := 0; start < len(entries); start += perPage {
		end := min(start+perPage, len(entries))
		rec := make([]byte, p.PageSize())
		binary.BigEndian.PutUint32(rec[0:], walMagic)
		count := uint32(end - start)
		if end == len(entries) {
			count |= walFinalFlag
		}
		binary.BigEndian.PutUint32(rec[4:], count)
		for i, e := range entries[start:end] {
			off := 8 + i*frameHdrSize
			binary.BigEndian.PutUint32(rec[off:], uint32(e.pgno))
			binary.BigEndian.PutUint32(rec[off+4:], uint32(e.frame))
		}
		if err := p.walFile.WritePage(p.walHead, rec); err != nil {
			return err
		}
		p.walHead++
	}
	if err := p.walFile.Fsync(); err != nil {
		return err
	}
	// The committed-index publish and the checkpoint decision run under
	// walMu: a concurrent view capture sees the whole commit or none of
	// it, and never runs during a checkpoint's in-place rewrites. The
	// frames are device-durable before the index update (the Fsync
	// above), so every indexed frame a view copies is safely readable.
	p.walMu.Lock()
	defer p.walMu.Unlock()
	for pgno, frame := range p.txFrames {
		p.walIndex[pgno] = frame
	}
	p.ckptAccum += int64(len(p.txFrames)) + 1
	p.txFrames = nil
	if p.ckptAccum >= p.cfg.CheckpointPages {
		if p.walReaders > 0 {
			// A live view still references pre-checkpoint database pages
			// and log frames; retry at the next commit.
			p.CkptDeferred++
			return nil
		}
		return p.checkpointLocked()
	}
	return nil
}

// checkpointLocked copies the latest committed version of every page in
// the WAL into the database file, fsyncs it, and resets the log. Caller
// holds walMu (or is single-threaded at open) with no views live.
func (p *Pager) checkpointLocked() error {
	if len(p.walIndex) == 0 {
		p.ckptAccum = 0
		return nil
	}
	buf := make([]byte, p.PageSize())
	for pgno, frame := range p.walIndex {
		if err := p.walFile.ReadPage(frame, buf); err != nil {
			return err
		}
		if err := p.file.WritePage(int64(pgno-1), buf); err != nil {
			return err
		}
	}
	if err := p.file.Fsync(); err != nil {
		return err
	}
	if err := p.walFile.Truncate(0); err != nil {
		return err
	}
	if err := p.walFile.Fsync(); err != nil {
		return err
	}
	p.walIndex = make(map[Pgno]int64)
	p.walHead = 0
	p.ckptAccum = 0
	p.Checkpoints++
	return nil
}

// Checkpoint forces a WAL checkpoint outside the automatic threshold.
// Call from the writer's goroutine; with reader views live it defers,
// like the automatic trigger.
func (p *Pager) Checkpoint() error {
	if p.cfg.Mode != WAL {
		return nil
	}
	p.walMu.Lock()
	defer p.walMu.Unlock()
	if p.walReaders > 0 {
		p.CkptDeferred++
		return nil
	}
	return p.checkpointLocked()
}

// WALStats samples the checkpoint counters (walMu-consistent, safe
// mid-run from any goroutine).
func (p *Pager) WALStats() (checkpoints, deferred int64) {
	p.walMu.Lock()
	defer p.walMu.Unlock()
	return p.Checkpoints, p.CkptDeferred
}

func (p *Pager) commitOff() error {
	// Force all dirty pages through the file system (write(t,p)) and
	// commit with the single fsync (commit(t)).
	if err := p.flushDirtyToDB(); err != nil {
		return err
	}
	return p.file.Fsync()
}

// flushDirtyToDB writes every dirty cached page to the database file.
func (p *Pager) flushDirtyToDB() error {
	for pgno := range p.dirty {
		pg := p.cache[pgno]
		if pg == nil || !pg.dirty {
			continue
		}
		if err := p.file.WritePage(int64(pgno-1), pg.data); err != nil {
			return err
		}
		pg.dirty = false
	}
	clear(p.dirty)
	return nil
}

// Rollback aborts the transaction, undoing cached changes and any
// stolen writes per the journal mode.
func (p *Pager) Rollback() error {
	if !p.inTx {
		return ErrNoTx
	}
	switch p.cfg.Mode {
	case Rollback:
		// Playback: restore original images over cache and any stolen
		// database writes.
		for pgno, img := range p.journaled {
			if pg, ok := p.cache[pgno]; ok {
				copy(pg.data, img)
				pg.dirty = false
			}
			if p.stolen[pgno] {
				if err := p.file.WritePage(int64(pgno-1), img); err != nil {
					return err
				}
			}
		}
		if len(p.stolen) > 0 {
			if err := p.file.Fsync(); err != nil {
				return err
			}
		}
		if p.jFile != nil {
			_ = p.jFile.Close()
			p.jFile = nil
			if err := p.fs.Remove(p.jnlName()); err != nil {
				return err
			}
		}
		for pgno := range p.dirty {
			p.dropCached(pgno)
		}
	case WAL:
		// Own frames are simply forgotten; the log head rewinds.
		if len(p.txFrames) > 0 {
			lo := p.walHead
			for _, f := range p.txFrames {
				if f < lo {
					lo = f
				}
			}
			p.walHead = lo
			_ = p.walFile.Truncate(lo)
		}
		p.txFrames = nil
		for pgno := range p.dirty {
			p.dropCached(pgno)
		}
	case Off:
		// ioctl(abort): stolen pages roll back inside the device. A
		// read-only snapshot session never staged anything to abort.
		if p.snap == nil {
			if err := p.file.Abort(); err != nil {
				return err
			}
		}
		for pgno := range p.dirty {
			p.dropCached(pgno)
		}
		for pgno := range p.stolen {
			p.dropCached(pgno)
		}
	}
	clear(p.dirty)
	p.nPages = p.txNPages
	p.freelist = p.txFreelist
	p.schema = p.txSchema
	p.inTx = false
	p.journaled = nil
	p.stolen = nil
	p.Rollbacks++
	p.noteTxn(trace.KTxn, 0)
	return nil
}

// dropCached removes a page from the cache so the next Get re-reads the
// stable version.
func (p *Pager) dropCached(pgno Pgno) {
	delete(p.cache, pgno)
}

// recoverRollback plays back a hot journal left by a crash (§6.4).
func (p *Pager) recoverRollback() error {
	name := p.jnlName()
	if !p.fs.Exists(name) {
		return nil
	}
	j, err := p.fs.Open(name)
	if err != nil {
		return err
	}
	hdr := make([]byte, p.PageSize())
	if j.Pages() == 0 {
		_ = j.Close()
		return p.fs.Remove(name)
	}
	if err := j.ReadPage(0, hdr); err != nil {
		return err
	}
	if binary.BigEndian.Uint32(hdr[0:]) != jnlMagic {
		// Garbage journal (crashed before the header was durable):
		// nothing was committed against it, discard.
		_ = j.Close()
		return p.fs.Remove(name)
	}
	origSize := Pgno(binary.BigEndian.Uint32(hdr[4:]))
	count := int(binary.BigEndian.Uint32(hdr[8:]))
	img := make([]byte, p.PageSize())
	for i := 0; i < count; i++ {
		pgno := Pgno(binary.BigEndian.Uint32(hdr[12+4*i:]))
		if int64(1+i) >= j.Pages() {
			break
		}
		if err := j.ReadPage(int64(1+i), img); err != nil {
			return err
		}
		if err := p.file.WritePage(int64(pgno-1), img); err != nil {
			return err
		}
	}
	if origSize >= 1 {
		if err := p.file.Truncate(int64(origSize)); err != nil {
			return err
		}
	}
	if err := p.file.Fsync(); err != nil {
		return err
	}
	_ = j.Close()
	if err := p.fs.Remove(name); err != nil {
		return err
	}
	return p.loadHeader()
}

// Close flushes nothing (callers must commit first) and releases files.
func (p *Pager) Close() error {
	if p.inTx {
		if err := p.Rollback(); err != nil {
			return err
		}
	}
	if p.jFile != nil {
		_ = p.jFile.Close()
	}
	if p.walFile != nil {
		_ = p.walFile.Close()
	}
	if p.file == nil {
		return nil // snapshot session: the snapshot's owner closes it
	}
	return p.file.Close()
}

// File exposes the pager's underlying database file for cross-database
// transaction coordination (the X-FTL multi-file commit of §4.3).
func (p *Pager) File() *simfs.File { return p.file }

// FlushForGroupCommit pushes every dirty page to the file system
// without issuing the commit fsync, so that several databases' updates
// can ride one shared device transaction. Valid only in Off mode; the
// caller completes the group with one Fsync on the shared tid and then
// FinishGroupCommit on each participant.
func (p *Pager) FlushForGroupCommit() error {
	if !p.inTx {
		return ErrNoTx
	}
	if p.cfg.Mode != Off {
		return fmt.Errorf("pager: group commit requires journal mode off, have %v", p.cfg.Mode)
	}
	if !p.mutated {
		p.finishTx()
		return nil
	}
	return p.flushDirtyToDB()
}

// FinishGroupCommit concludes a transaction whose durability was
// established by the group's shared commit.
func (p *Pager) FinishGroupCommit() {
	if !p.inTx {
		return
	}
	p.finishTx()
	p.Commits++
}

// FinishPreparedTx concludes a transaction whose fate a fleet
// coordinator decided after a group prepare. The device-side commit or
// abort — and the file-system image promotion or revert — already
// happened via simfs.ResolveInDoubt, so this only reconciles the
// pager's cached state with the decision: a commit keeps the cache, an
// abort drops the transaction's pages and rewinds the header snapshot
// exactly as Rollback does (minus the device abort, which must not be
// issued twice for the shared transaction id).
func (p *Pager) FinishPreparedTx(commit bool) {
	if !p.inTx {
		return
	}
	if commit {
		p.finishTx()
		p.Commits++
		return
	}
	for pgno := range p.dirty {
		p.dropCached(pgno)
	}
	for pgno := range p.stolen {
		p.dropCached(pgno)
	}
	clear(p.dirty)
	p.nPages = p.txNPages
	p.freelist = p.txFreelist
	p.schema = p.txSchema
	p.inTx = false
	p.journaled = nil
	p.stolen = nil
	p.Rollbacks++
	p.noteTxn(trace.KTxn, 0)
}

// finishTx clears per-transaction state after a successful commit.
func (p *Pager) finishTx() {
	p.inTx = false
	p.journaled = nil
	p.stolen = nil
	p.txFrames = nil
}
