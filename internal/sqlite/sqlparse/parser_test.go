package sqlparse

import (
	"testing"
)

func mustParse(t *testing.T, src string) Stmt {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE partsupp (
		ps_partkey INTEGER PRIMARY KEY,
		ps_suppkey INTEGER,
		ps_availqty INTEGER,
		ps_supplycost REAL,
		ps_comment TEXT
	)`)
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name != "partsupp" || len(ct.Columns) != 5 {
		t.Errorf("table = %q cols = %d", ct.Name, len(ct.Columns))
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Type != "INTEGER" {
		t.Errorf("pk column parsed wrong: %+v", ct.Columns[0])
	}
	if ct.Columns[3].Type != "REAL" {
		t.Errorf("supplycost type = %q", ct.Columns[3].Type)
	}
}

func TestParseCreateTableExoticTypes(t *testing.T) {
	st := mustParse(t, `CREATE TABLE t (a VARCHAR(24), b NUMERIC(12,2), c INT NOT NULL DEFAULT 0)`)
	ct := st.(*CreateTable)
	if ct.Columns[0].Type != "TEXT" {
		t.Errorf("VARCHAR -> %q, want TEXT", ct.Columns[0].Type)
	}
	if ct.Columns[1].Type != "REAL" {
		t.Errorf("NUMERIC -> %q, want REAL", ct.Columns[1].Type)
	}
	if ct.Columns[2].Type != "INTEGER" {
		t.Errorf("INT -> %q, want INTEGER", ct.Columns[2].Type)
	}
}

func TestParseCreateIndex(t *testing.T) {
	st := mustParse(t, `CREATE UNIQUE INDEX idx_ps ON partsupp (ps_suppkey, ps_partkey)`)
	ci := st.(*CreateIndex)
	if !ci.Unique || ci.Table != "partsupp" || len(ci.Columns) != 2 {
		t.Errorf("%+v", ci)
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, ?)`)
	ins := st.(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	if _, ok := ins.Rows[1][1].(*Param); !ok {
		t.Errorf("param not parsed: %T", ins.Rows[1][1])
	}
}

func TestParseSelectJoinWhere(t *testing.T) {
	st := mustParse(t, `SELECT o.id, c.name AS cname, COUNT(*)
		FROM orders o JOIN customers c ON o.cust_id = c.id
		WHERE o.total > 10.5 AND c.city = 'NYC'
		GROUP BY c.id HAVING COUNT(*) > 1
		ORDER BY o.id DESC LIMIT 10 OFFSET 5`)
	sel := st.(*Select)
	if sel.From.Name != "orders" || sel.From.Alias != "o" {
		t.Errorf("from = %+v", sel.From)
	}
	if len(sel.Joins) != 1 || sel.Joins[0].Table.Name != "customers" {
		t.Errorf("joins = %+v", sel.Joins)
	}
	if sel.Where == nil || sel.GroupBy == nil || sel.Having == nil {
		t.Error("missing clauses")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Error("limit/offset missing")
	}
	if len(sel.Columns) != 3 || sel.Columns[1].Alias != "cname" {
		t.Errorf("columns = %+v", sel.Columns)
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := mustParse(t, `SELECT * FROM t`).(*Select)
	if !sel.Columns[0].Star {
		t.Error("star not parsed")
	}
	sel = mustParse(t, `SELECT t.* FROM t`).(*Select)
	if !sel.Columns[0].Star || sel.Columns[0].Table != "t" {
		t.Error("tbl.* not parsed")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	up := mustParse(t, `UPDATE partsupp SET ps_supplycost = ps_supplycost + 1 WHERE ps_partkey = ?`).(*Update)
	if up.Table != "partsupp" || len(up.Set) != 1 || up.Where == nil {
		t.Errorf("%+v", up)
	}
	del := mustParse(t, `DELETE FROM t WHERE a BETWEEN 1 AND 5`).(*Delete)
	if del.Table != "t" || del.Where == nil {
		t.Errorf("%+v", del)
	}
	if _, ok := del.Where.(*Between); !ok {
		t.Errorf("where = %T", del.Where)
	}
}

func TestParseTxControl(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*Begin); !ok {
		t.Error("BEGIN")
	}
	if _, ok := mustParse(t, "BEGIN TRANSACTION;").(*Begin); !ok {
		t.Error("BEGIN TRANSACTION")
	}
	if _, ok := mustParse(t, "COMMIT").(*Commit); !ok {
		t.Error("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK").(*Rollback); !ok {
		t.Error("ROLLBACK")
	}
}

func TestParsePragma(t *testing.T) {
	pr := mustParse(t, "PRAGMA journal_mode = WAL").(*Pragma)
	if pr.Name != "journal_mode" || pr.Value != "WAL" {
		t.Errorf("%+v", pr)
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []string{
		`SELECT 1+2*3`,
		`SELECT -x, NOT y FROM t`,
		`SELECT a || 'suffix' FROM t`,
		`SELECT * FROM t WHERE a IN (1,2,3) AND b NOT IN (4)`,
		`SELECT * FROM t WHERE a IS NULL OR b IS NOT NULL`,
		`SELECT * FROM t WHERE name LIKE 'abc%'`,
		`SELECT * FROM t WHERE name NOT LIKE '%x'`,
		`SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t`,
		`SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t`,
		`SELECT COUNT(DISTINCT a), SUM(b), MIN(c), MAX(d), AVG(e) FROM t`,
		`SELECT CAST(a AS INTEGER) FROM t`,
		`SELECT x'deadbeef'`,
		`SELECT * FROM a, b WHERE a.id = b.id`,
		`SELECT "quoted col" FROM [quoted table]`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELEC 1`,
		`SELECT FROM`,
		`INSERT INTO`,
		`CREATE TABLE`,
		`SELECT 'unterminated`,
		`SELECT * FROM t WHERE`,
		`UPDATE t SET`,
		`SELECT 1 2`,
		`SELECT (1`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
		CREATE TABLE a (x INTEGER);
		INSERT INTO a VALUES (1);
		-- a comment
		SELECT * FROM a;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Errorf("got %d statements, want 3", len(stmts))
	}
}

func TestParamNumbering(t *testing.T) {
	ins := mustParse(t, `INSERT INTO t VALUES (?, ?, ?)`).(*Insert)
	for i, e := range ins.Rows[0] {
		p, ok := e.(*Param)
		if !ok || p.Index != i {
			t.Errorf("param %d parsed as %+v", i, e)
		}
	}
}
