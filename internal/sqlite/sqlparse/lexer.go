// Package sqlparse provides the SQL lexer, parser and AST for the
// simulated SQLite engine. The grammar covers the statement shapes the
// paper's workloads use: CREATE TABLE/INDEX, DROP, INSERT, SELECT with
// joins/aggregates/ORDER BY/LIMIT, UPDATE, DELETE, BEGIN/COMMIT/
// ROLLBACK and PRAGMA.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokBlob
	TokParam  // ?
	TokSymbol // punctuation and operators
)

// Token is one lexeme with its source position.
type Token struct {
	Kind TokenKind
	Text string // keywords upper-cased; idents as written
	Pos  int
}

// Error is a parse error with position context.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql: %s (at offset %d)", e.Msg, e.Pos) }

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "ON": true, "DROP": true, "BEGIN": true,
	"COMMIT": true, "ROLLBACK": true, "TRANSACTION": true, "PRAGMA": true,
	"AND": true, "OR": true, "NOT": true, "NULL": true, "IS": true, "IN": true,
	"LIKE": true, "BETWEEN": true, "JOIN": true, "INNER": true, "LEFT": true,
	"OUTER": true, "CROSS": true, "GROUP": true, "BY": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"DISTINCT": true, "PRIMARY": true, "KEY": true, "UNIQUE": true,
	"INTEGER": true, "INT": true, "TEXT": true, "REAL": true, "BLOB": true,
	"IF": true, "EXISTS": true, "DEFAULT": true, "HAVING": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "CAST": true,
}

// Lex tokenizes a SQL statement.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			j := strings.Index(src[i+2:], "*/")
			if j < 0 {
				return nil, &Error{i, "unterminated comment"}
			}
			i += j + 4
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, &Error{start, "unterminated string"}
				}
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, Token{TokString, sb.String(), start})
		case c == '"' || c == '`' || c == '[':
			// Quoted identifier.
			start := i
			closer := byte('"')
			if c == '`' {
				closer = '`'
			} else if c == '[' {
				closer = ']'
			}
			i++
			j := i
			for j < n && src[j] != closer {
				j++
			}
			if j >= n {
				return nil, &Error{start, "unterminated quoted identifier"}
			}
			toks = append(toks, Token{TokIdent, src[i:j], start})
			i = j + 1
		case (c == 'x' || c == 'X') && i+1 < n && src[i+1] == '\'':
			start := i
			j := i + 2
			for j < n && src[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, &Error{start, "unterminated blob literal"}
			}
			toks = append(toks, Token{TokBlob, src[i+2 : j], start})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			isFloat := false
			for i < n && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' ||
				src[i] == 'e' || src[i] == 'E' ||
				((src[i] == '+' || src[i] == '-') && i > start && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				if src[i] == '.' || src[i] == 'e' || src[i] == 'E' {
					isFloat = true
				}
				i++
			}
			kind := TokInt
			if isFloat {
				kind = TokFloat
			}
			toks = append(toks, Token{kind, src[start:i], start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentCont(rune(src[i])) {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{TokKeyword, up, start})
			} else {
				toks = append(toks, Token{TokIdent, word, start})
			}
		case c == '?':
			toks = append(toks, Token{TokParam, "?", i})
			i++
		default:
			start := i
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "!=", "<>", "||":
				toks = append(toks, Token{TokSymbol, two, start})
				i += 2
			default:
				switch c {
				case '(', ')', ',', ';', '*', '+', '-', '/', '%', '=', '<', '>', '.':
					toks = append(toks, Token{TokSymbol, string(c), start})
					i++
				default:
					return nil, &Error{i, fmt.Sprintf("unexpected character %q", c)}
				}
			}
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
