package sqlparse

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`SELECT a, 'str''ing', 1.5e3, x'ff00', ? FROM t -- comment`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokKeyword, TokIdent, TokSymbol, TokString, TokSymbol,
		TokFloat, TokSymbol, TokBlob, TokSymbol, TokParam, TokKeyword, TokIdent, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d kind = %v, want %v (%q)", i, got[i], want[i], toks[i].Text)
		}
	}
	if toks[3].Text != "str'ing" {
		t.Errorf("escaped string = %q", toks[3].Text)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`a <= b >= c != d <> e || f`)
	if err != nil {
		t.Fatal(err)
	}
	ops := []string{}
	for _, tk := range toks {
		if tk.Kind == TokSymbol {
			ops = append(ops, tk.Text)
		}
	}
	want := []string{"<=", ">=", "!=", "<>", "||"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("SELECT /* block\ncomment */ 1 -- trailing")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 { // SELECT, 1, EOF
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexQuotedIdentifiers(t *testing.T) {
	toks, err := Lex("SELECT \"a b\", `c d`, [e f]")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, tk := range toks {
		if tk.Kind == TokIdent {
			names = append(names, tk.Text)
		}
	}
	if len(names) != 3 || names[0] != "a b" || names[1] != "c d" || names[2] != "e f" {
		t.Errorf("idents = %v", names)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'open", "/* open", "x'open", "\"open", "@"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded", src)
		}
	}
}

func TestLexKeywordCase(t *testing.T) {
	toks, _ := Lex("select FROM WhErE")
	for _, tk := range toks[:3] {
		if tk.Kind != TokKeyword {
			t.Errorf("%q not a keyword", tk.Text)
		}
	}
	if toks[0].Text != "SELECT" || toks[2].Text != "WHERE" {
		t.Errorf("keywords not upper-cased: %v", toks)
	}
}
