package sqlparse

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	return st, nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Stmt
	for {
		for p.accept(TokSymbol, ";") {
		}
		if p.at(TokEOF, "") {
			return out, nil
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
}

type parser struct {
	toks   []Token
	pos    int
	params int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) atKw(kw string) bool { return p.at(TokKeyword, kw) }

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKw(kw string) bool { return p.accept(TokKeyword, kw) }

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if !p.at(kind, text) {
		return Token{}, p.errf("expected %q, found %q", text, p.cur().Text)
	}
	return p.next(), nil
}

func (p *parser) expectKw(kw string) error {
	_, err := p.expect(TokKeyword, kw)
	return err
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// ident accepts an identifier or a non-reserved keyword used as a name.
func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.Kind == TokIdent {
		p.pos++
		return t.Text, nil
	}
	return "", p.errf("expected identifier, found %q", t.Text)
}

func (p *parser) statement() (Stmt, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return nil, p.errf("expected statement, found %q", t.Text)
	}
	switch t.Text {
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "CREATE":
		return p.createStmt()
	case "DROP":
		return p.dropStmt()
	case "BEGIN":
		p.pos++
		p.acceptKw("TRANSACTION")
		return &Begin{}, nil
	case "COMMIT":
		p.pos++
		p.acceptKw("TRANSACTION")
		return &Commit{}, nil
	case "ROLLBACK":
		p.pos++
		p.acceptKw("TRANSACTION")
		return &Rollback{}, nil
	case "PRAGMA":
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		pr := &Pragma{Name: strings.ToLower(name)}
		if p.accept(TokSymbol, "=") {
			v := p.next()
			pr.Value = v.Text
		}
		return pr, nil
	default:
		return nil, p.errf("unsupported statement %q", t.Text)
	}
}

func (p *parser) createStmt() (Stmt, error) {
	p.pos++ // CREATE
	unique := p.acceptKw("UNIQUE")
	switch {
	case p.acceptKw("TABLE"):
		ct := &CreateTable{}
		if p.acceptKw("IF") {
			if err := p.expectKw("NOT"); err != nil {
				// NOT is lexed as keyword
				return nil, err
			}
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			ct.IfNotExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ct.Name = name
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		for {
			col, err := p.columnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, col)
			if p.accept(TokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return ct, nil
	case p.acceptKw("INDEX"):
		ci := &CreateIndex{Unique: unique}
		if p.acceptKw("IF") {
			if err := p.expectKw("NOT"); err != nil {
				return nil, err
			}
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			ci.IfNotExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Name = name
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		tbl, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Table = tbl
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ci.Columns = append(ci.Columns, col)
			p.acceptKw("ASC")
			p.acceptKw("DESC")
			if p.accept(TokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return ci, nil
	default:
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) columnDef() (ColumnDef, error) {
	var cd ColumnDef
	name, err := p.ident()
	if err != nil {
		return cd, err
	}
	cd.Name = name
	// Optional type name: one or more type keywords/idents.
	for p.atKw("INTEGER") || p.atKw("INT") || p.atKw("TEXT") || p.atKw("REAL") || p.atKw("BLOB") {
		t := p.next().Text
		if t == "INT" {
			t = "INTEGER"
		}
		if cd.Type == "" {
			cd.Type = t
		}
	}
	// Idents as exotic type names (VARCHAR(20), DECIMAL etc.).
	if cd.Type == "" && p.cur().Kind == TokIdent {
		raw := strings.ToUpper(p.next().Text)
		switch {
		case strings.Contains(raw, "CHAR"), strings.Contains(raw, "CLOB"):
			cd.Type = "TEXT"
		case strings.Contains(raw, "DEC"), strings.Contains(raw, "NUM"), strings.Contains(raw, "DOUB"), strings.Contains(raw, "FLO"):
			cd.Type = "REAL"
		default:
			cd.Type = ""
		}
		if p.accept(TokSymbol, "(") {
			for !p.accept(TokSymbol, ")") {
				p.pos++
			}
		}
	}
	for {
		switch {
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return cd, err
			}
			cd.PrimaryKey = true
		case p.acceptKw("UNIQUE"):
			cd.Unique = true
		case p.acceptKw("NOT"):
			if err := p.expectKw("NULL"); err != nil {
				return cd, err
			}
		case p.acceptKw("DEFAULT"):
			if _, err := p.exprPrimary(); err != nil {
				return cd, err
			}
		default:
			return cd, nil
		}
	}
}

func (p *parser) dropStmt() (Stmt, error) {
	p.pos++ // DROP
	switch {
	case p.acceptKw("TABLE"):
		dt := &DropTable{}
		if p.acceptKw("IF") {
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			dt.IfExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		dt.Name = name
		return dt, nil
	case p.acceptKw("INDEX"):
		di := &DropIndex{}
		if p.acceptKw("IF") {
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			di.IfExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		di.Name = name
		return di, nil
	default:
		return nil, p.errf("expected TABLE or INDEX after DROP")
	}
}

func (p *parser) insertStmt() (Stmt, error) {
	p.pos++ // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	ins := &Insert{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins.Table = name
	if p.accept(TokSymbol, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.accept(TokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(TokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	return ins, nil
}

func (p *parser) updateStmt() (Stmt, error) {
	p.pos++ // UPDATE
	up := &Update{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	up.Table = name
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: val})
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *parser) deleteStmt() (Stmt, error) {
	p.pos++ // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	del := &Delete{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	del.Table = name
	if p.acceptKw("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *parser) selectStmt() (*Select, error) {
	p.pos++ // SELECT
	sel := &Select{}
	sel.Distinct = p.acceptKw("DISTINCT")
	for {
		rc, err := p.resultColumn()
		if err != nil {
			return nil, err
		}
		sel.Columns = append(sel.Columns, rc)
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	if p.acceptKw("FROM") {
		tr, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		sel.From = &tr
		for {
			inner := p.acceptKw("INNER")
			left := false
			if !inner {
				left = p.acceptKw("LEFT")
				if left {
					p.acceptKw("OUTER")
				}
			}
			cross := false
			if !inner && !left {
				cross = p.acceptKw("CROSS")
			}
			if !p.acceptKw("JOIN") {
				if inner || left || cross {
					return nil, p.errf("expected JOIN")
				}
				if p.accept(TokSymbol, ",") { // comma join
					jt, err := p.tableRef()
					if err != nil {
						return nil, err
					}
					sel.Joins = append(sel.Joins, Join{Table: jt})
					continue
				}
				break
			}
			jt, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			j := Join{Table: jt, Left: left}
			if p.acceptKw("ON") {
				on, err := p.expr()
				if err != nil {
					return nil, err
				}
				j.On = on
			}
			sel.Joins = append(sel.Joins, j)
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.accept(TokSymbol, ",") {
				continue
			}
			break
		}
		if p.acceptKw("HAVING") {
			h, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.Having = h
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			term := OrderTerm{Expr: e}
			if p.acceptKw("DESC") {
				term.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, term)
			if p.accept(TokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
		if p.acceptKw("OFFSET") {
			o, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.Offset = o
		}
	}
	return sel, nil
}

func (p *parser) resultColumn() (ResultColumn, error) {
	if p.accept(TokSymbol, "*") {
		return ResultColumn{Star: true}, nil
	}
	// tbl.* lookahead.
	if p.cur().Kind == TokIdent && p.toks[p.pos+1].Kind == TokSymbol && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokSymbol && p.toks[p.pos+2].Text == "*" {
		tbl := p.next().Text
		p.pos += 2
		return ResultColumn{Star: true, Table: tbl}, nil
	}
	e, err := p.expr()
	if err != nil {
		return ResultColumn{}, err
	}
	rc := ResultColumn{Expr: e}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return rc, err
		}
		rc.Alias = a
	} else if p.cur().Kind == TokIdent {
		rc.Alias = p.next().Text
	}
	return rc, nil
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: name}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return tr, err
		}
		tr.Alias = a
	} else if p.cur().Kind == TokIdent {
		tr.Alias = p.next().Text
	}
	return tr, nil
}

// ---- expressions (precedence climbing) ----

func (p *parser) expr() (Expr, error) { return p.exprOr() }

func (p *parser) exprOr() (Expr, error) {
	l, err := p.exprAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.exprAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) exprAnd() (Expr, error) {
	l, err := p.exprNot()
	if err != nil {
		return nil, err
	}
	for p.atKw("AND") {
		p.pos++
		r, err := p.exprNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) exprNot() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.exprNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.exprCmp()
}

func (p *parser) exprCmp() (Expr, error) {
	l, err := p.exprAdd()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(TokSymbol, "="), p.at(TokSymbol, "<"), p.at(TokSymbol, ">"),
			p.at(TokSymbol, "<="), p.at(TokSymbol, ">="), p.at(TokSymbol, "!="), p.at(TokSymbol, "<>"):
			op := p.next().Text
			if op == "<>" {
				op = "!="
			}
			r, err := p.exprAdd()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: op, L: l, R: r}
		case p.atKw("IS"):
			p.pos++
			not := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			l = &IsNull{X: l, Not: not}
		case p.atKw("LIKE"):
			p.pos++
			r, err := p.exprAdd()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "LIKE", L: l, R: r}
		case p.atKw("NOT"):
			// NOT IN / NOT LIKE / NOT BETWEEN
			save := p.pos
			p.pos++
			switch {
			case p.atKw("IN"):
				in, err := p.inTail(l, true)
				if err != nil {
					return nil, err
				}
				l = in
			case p.atKw("LIKE"):
				p.pos++
				r, err := p.exprAdd()
				if err != nil {
					return nil, err
				}
				l = &Unary{Op: "NOT", X: &Binary{Op: "LIKE", L: l, R: r}}
			case p.atKw("BETWEEN"):
				b, err := p.betweenTail(l, true)
				if err != nil {
					return nil, err
				}
				l = b
			default:
				p.pos = save
				return l, nil
			}
		case p.atKw("IN"):
			in, err := p.inTail(l, false)
			if err != nil {
				return nil, err
			}
			l = in
		case p.atKw("BETWEEN"):
			b, err := p.betweenTail(l, false)
			if err != nil {
				return nil, err
			}
			l = b
		default:
			return l, nil
		}
	}
}

func (p *parser) inTail(l Expr, not bool) (Expr, error) {
	p.pos++ // IN
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	in := &InList{X: l, Not: not}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) betweenTail(l Expr, not bool) (Expr, error) {
	p.pos++ // BETWEEN
	lo, err := p.exprAdd()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AND"); err != nil {
		return nil, err
	}
	hi, err := p.exprAdd()
	if err != nil {
		return nil, err
	}
	return &Between{X: l, Not: not, Lo: lo, Hi: hi}, nil
}

func (p *parser) exprAdd() (Expr, error) {
	l, err := p.exprMul()
	if err != nil {
		return nil, err
	}
	for p.at(TokSymbol, "+") || p.at(TokSymbol, "-") || p.at(TokSymbol, "||") {
		op := p.next().Text
		r, err := p.exprMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) exprMul() (Expr, error) {
	l, err := p.exprUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokSymbol, "*") || p.at(TokSymbol, "/") || p.at(TokSymbol, "%") {
		op := p.next().Text
		r, err := p.exprUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) exprUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		x, err := p.exprUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	if p.accept(TokSymbol, "+") {
		return p.exprUnary()
	}
	return p.exprPrimary()
}

func (p *parser) exprPrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.pos++
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &FloatLit{Value: f}, nil
		}
		return &IntLit{Value: v}, nil
	case TokFloat:
		p.pos++
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &FloatLit{Value: f}, nil
	case TokString:
		p.pos++
		return &StringLit{Value: t.Text}, nil
	case TokBlob:
		p.pos++
		b, err := hex.DecodeString(t.Text)
		if err != nil {
			return nil, p.errf("bad blob literal")
		}
		return &BlobLit{Value: b}, nil
	case TokParam:
		p.pos++
		idx := p.params
		p.params++
		return &Param{Index: idx}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return &NullLit{}, nil
		case "CASE":
			return p.caseExpr()
		case "CAST":
			p.pos++
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			// Consume the type tokens.
			for p.cur().Kind == TokKeyword || p.cur().Kind == TokIdent {
				p.pos++
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil // affinity is dynamic; CAST is a pass-through
		}
		return nil, p.errf("unexpected keyword %q in expression", t.Text)
	case TokIdent:
		name := p.next().Text
		// Function call?
		if p.accept(TokSymbol, "(") {
			call := &Call{Name: strings.ToUpper(name)}
			if p.accept(TokSymbol, "*") {
				call.Star = true
				if _, err := p.expect(TokSymbol, ")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			call.Distinct = p.acceptKw("DISTINCT")
			if !p.accept(TokSymbol, ")") {
				for {
					e, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, e)
					if p.accept(TokSymbol, ",") {
						continue
					}
					break
				}
				if _, err := p.expect(TokSymbol, ")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		// Qualified column?
		if p.accept(TokSymbol, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Column: col}, nil
		}
		return &ColumnRef{Column: name}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.Text)
}

func (p *parser) caseExpr() (Expr, error) {
	p.pos++ // CASE
	ce := &CaseExpr{}
	if !p.atKw("WHEN") {
		op, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.acceptKw("WHEN") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, When{Cond: cond, Then: then})
	}
	if p.acceptKw("ELSE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf("CASE without WHEN")
	}
	return ce, nil
}
