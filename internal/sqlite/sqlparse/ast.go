package sqlparse

// Stmt is any parsed SQL statement.
type Stmt interface{ stmt() }

// ColumnDef is one column in a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       string // declared affinity: INTEGER, TEXT, REAL, BLOB, ""
	PrimaryKey bool
	Unique     bool
}

// CreateTable is CREATE TABLE [IF NOT EXISTS] name (cols...).
type CreateTable struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (cols...).
type CreateIndex struct {
	Name        string
	Table       string
	Columns     []string
	Unique      bool
	IfNotExists bool
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// DropIndex is DROP INDEX [IF EXISTS] name.
type DropIndex struct {
	Name     string
	IfExists bool
}

// Insert is INSERT INTO table [(cols)] VALUES (...),(...).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// Update is UPDATE table SET col=expr,... [WHERE expr].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET clause.
type Assignment struct {
	Column string
	Value  Expr
}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where Expr
}

// TableRef is one FROM-clause table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Join is one JOIN clause.
type Join struct {
	Table TableRef
	On    Expr // nil for CROSS JOIN
	Left  bool // LEFT [OUTER] JOIN
}

// OrderTerm is one ORDER BY term.
type OrderTerm struct {
	Expr Expr
	Desc bool
}

// ResultColumn is one item of the SELECT list.
type ResultColumn struct {
	Expr  Expr // nil means * (Star true)
	Alias string
	Star  bool   // SELECT * or tbl.*
	Table string // for tbl.*
}

// Select is a SELECT statement.
type Select struct {
	Distinct bool
	Columns  []ResultColumn
	From     *TableRef
	Joins    []Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderTerm
	Limit    Expr // nil = none
	Offset   Expr
}

// Begin is BEGIN [TRANSACTION].
type Begin struct{}

// Commit is COMMIT.
type Commit struct{}

// Rollback is ROLLBACK.
type Rollback struct{}

// Pragma is PRAGMA name [= value] — accepted and surfaced to the engine.
type Pragma struct {
	Name  string
	Value string
}

func (*CreateTable) stmt() {}
func (*CreateIndex) stmt() {}
func (*DropTable) stmt()   {}
func (*DropIndex) stmt()   {}
func (*Insert) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}
func (*Select) stmt()      {}
func (*Begin) stmt()       {}
func (*Commit) stmt()      {}
func (*Rollback) stmt()    {}
func (*Pragma) stmt()      {}

// Expr is any expression node.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

// FloatLit is a floating-point literal.
type FloatLit struct{ Value float64 }

// StringLit is a text literal.
type StringLit struct{ Value string }

// BlobLit is a hex blob literal x'...'.
type BlobLit struct{ Value []byte }

// NullLit is NULL.
type NullLit struct{}

// Param is a positional ? placeholder (0-based index).
type Param struct{ Index int }

// ColumnRef names a column, optionally qualified.
type ColumnRef struct {
	Table  string
	Column string
}

// Unary is a prefix operator: -, NOT.
type Unary struct {
	Op string
	X  Expr
}

// Binary is an infix operator: arithmetic, comparison, AND, OR, LIKE, ||.
type Binary struct {
	Op   string
	L, R Expr
}

// IsNull is X IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// InList is X [NOT] IN (e1, e2, ...).
type InList struct {
	X    Expr
	Not  bool
	List []Expr
}

// Between is X [NOT] BETWEEN lo AND hi.
type Between struct {
	X      Expr
	Not    bool
	Lo, Hi Expr
}

// Call is a function invocation (aggregates included).
type Call struct {
	Name     string // upper-cased
	Distinct bool
	Star     bool // COUNT(*)
	Args     []Expr
}

// CaseExpr is CASE [operand] WHEN.. THEN.. [ELSE..] END.
type CaseExpr struct {
	Operand Expr
	Whens   []When
	Else    Expr
}

// When is one WHEN/THEN arm.
type When struct {
	Cond Expr
	Then Expr
}

func (*IntLit) expr()    {}
func (*FloatLit) expr()  {}
func (*StringLit) expr() {}
func (*BlobLit) expr()   {}
func (*NullLit) expr()   {}
func (*Param) expr()     {}
func (*ColumnRef) expr() {}
func (*Unary) expr()     {}
func (*Binary) expr()    {}
func (*IsNull) expr()    {}
func (*InList) expr()    {}
func (*Between) expr()   {}
func (*Call) expr()      {}
func (*CaseExpr) expr()  {}
