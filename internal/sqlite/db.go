package sqlite

import (
	"fmt"
	"strings"

	"repro/internal/simfs"
	"repro/internal/sqlite/pager"
	"repro/internal/sqlite/sqlparse"
)

// Config selects how a database is opened.
type Config struct {
	// JournalMode is the atomic-commit strategy (the paper's RBJ, WAL
	// and X-FTL/off configurations).
	JournalMode pager.JournalMode
	// CacheSize is the pager buffer pool in pages (default 2000).
	CacheSize int
	// CheckpointPages is the WAL auto-checkpoint threshold in log pages
	// (default 1000, the SQLite default the paper cites).
	CheckpointPages int64
}

// DB is one open database connection (SQLite is serverless; the
// connection IS the engine, §2.1). Not safe for concurrent use:
// SQLite's locking granularity is the whole database file (§6.2).
type DB struct {
	fs   *simfs.FS
	pg   *pager.Pager
	cat  *catalog
	name string

	explicitTx bool
	rngState   uint64

	// Stats.
	Statements int64
}

// Open creates or opens a database file on the file system and runs the
// journal-mode-specific crash recovery.
func Open(fsys *simfs.FS, name string, cfg Config) (*DB, error) {
	p, err := pager.Open(fsys, name, pager.Config{
		Mode:            cfg.JournalMode,
		CacheSize:       cfg.CacheSize,
		CheckpointPages: cfg.CheckpointPages,
	})
	if err != nil {
		return nil, err
	}
	cat, err := newCatalog(p)
	if err != nil {
		_ = p.Close()
		return nil, err
	}
	return &DB{fs: fsys, pg: p, cat: cat, name: name, rngState: 0x9E3779B97F4A7C15}, nil
}

// OpenSnapshotDB opens a read-only connection backed by a file-system
// snapshot: every page read resolves through the X-FTL version set
// pinned at snapshot-open time, so the connection sees one committed
// state of the database no matter what a concurrent writer commits
// afterwards. The snapshot handle stays owned by the caller (close it
// after closing the DB). Any write statement fails with
// pager.ErrReadOnly.
func OpenSnapshotDB(fsys *simfs.FS, name string, snap *simfs.Snapshot, cfg Config) (*DB, error) {
	p, err := pager.OpenSnapshot(fsys, name, snap, pager.Config{
		CacheSize: cfg.CacheSize,
	})
	if err != nil {
		return nil, err
	}
	cat, err := newCatalog(p)
	if err != nil {
		_ = p.Close()
		return nil, err
	}
	return &DB{fs: fsys, pg: p, cat: cat, name: name, rngState: 0x9E3779B97F4A7C15}, nil
}

// OpenWALReaderDB opens a read-only connection over a captured WAL
// view: page reads resolve through the committed frame index pinned at
// capture time, so the connection sees one committed state while the
// writer keeps appending to the live log. The view stays owned by the
// caller (release it after closing the DB). Any write statement fails
// with pager.ErrReadOnly.
func OpenWALReaderDB(fsys *simfs.FS, name string, view *pager.WALView, cfg Config) (*DB, error) {
	p, err := pager.OpenWALReader(fsys, name, view, pager.Config{
		CacheSize: cfg.CacheSize,
	})
	if err != nil {
		return nil, err
	}
	cat, err := newCatalog(p)
	if err != nil {
		_ = p.Close()
		return nil, err
	}
	return &DB{fs: fsys, pg: p, cat: cat, name: name, rngState: 0x9E3779B97F4A7C15}, nil
}

// Close releases the connection, rolling back any open transaction.
func (db *DB) Close() error {
	return db.pg.Close()
}

// Pager exposes the pager for instrumentation (checkpoint counts etc.).
func (db *DB) Pager() *pager.Pager { return db.pg }

// InTx reports whether an explicit transaction is open.
func (db *DB) InTx() bool { return db.explicitTx }

// rand is the deterministic RANDOM() source.
func (db *DB) rand() int64 {
	db.rngState ^= db.rngState << 13
	db.rngState ^= db.rngState >> 7
	db.rngState ^= db.rngState << 17
	return int64(db.rngState)
}

// Begin opens an explicit transaction.
func (db *DB) Begin() error {
	if db.explicitTx {
		return fmt.Errorf("%w: transaction already open", ErrTxState)
	}
	if err := db.pg.Begin(); err != nil {
		return err
	}
	db.explicitTx = true
	return nil
}

// Commit commits the explicit transaction (force-writing all updated
// pages per SQLite's force policy).
func (db *DB) Commit() error {
	if !db.explicitTx {
		return fmt.Errorf("%w: no transaction open", ErrTxState)
	}
	db.explicitTx = false
	return db.pg.Commit()
}

// Rollback aborts the explicit transaction. In X-FTL mode this is the
// path that reaches the device's abort(t) command via ioctl.
func (db *DB) Rollback() error {
	if !db.explicitTx {
		return fmt.Errorf("%w: no transaction open", ErrTxState)
	}
	db.explicitTx = false
	if err := db.pg.Rollback(); err != nil {
		return err
	}
	return db.cat.reset()
}

// Exec runs one statement that returns no rows, binding positional
// parameters. It returns the number of rows affected.
func (db *DB) Exec(sql string, args ...any) (int64, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return 0, err
	}
	return db.execStmt(st, args)
}

// ExecScript runs a semicolon-separated list of statements.
func (db *DB) ExecScript(sql string) error {
	stmts, err := sqlparse.ParseAll(sql)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		if _, err := db.execStmt(st, nil); err != nil {
			return err
		}
	}
	return nil
}

// Query runs a SELECT and returns the materialized result set.
func (db *DB) Query(sql string, args ...any) (*Rows, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("%w: Query requires SELECT", ErrMisuse)
	}
	params, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	return db.runSelect(sel, params)
}

// QueryRow runs a SELECT expected to return one row; ok=false when the
// result is empty.
func (db *DB) QueryRow(sql string, args ...any) ([]Value, bool, error) {
	rows, err := db.Query(sql, args...)
	if err != nil {
		return nil, false, err
	}
	if len(rows.Data) == 0 {
		return nil, false, nil
	}
	return rows.Data[0], true, nil
}

// Stmt is a prepared statement: parse once, run many times.
type Stmt struct {
	db  *DB
	ast sqlparse.Stmt
	sql string
}

// Prepare parses a statement for repeated execution.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, ast: st, sql: sql}, nil
}

// Exec runs the prepared statement with the given parameters.
func (s *Stmt) Exec(args ...any) (int64, error) {
	return s.db.execStmt(s.ast, args)
}

// Query runs the prepared SELECT with the given parameters.
func (s *Stmt) Query(args ...any) (*Rows, error) {
	sel, ok := s.ast.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("%w: Query requires SELECT", ErrMisuse)
	}
	params, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	return s.db.runSelect(sel, params)
}

// Rows is a fully materialized result set.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// Len reports the number of result rows.
func (r *Rows) Len() int { return len(r.Data) }

func bindArgs(args []any) ([]Value, error) {
	out := make([]Value, len(args))
	for i, a := range args {
		v, err := FromGo(a)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// execStmt dispatches one statement, wrapping it in an automatic
// transaction when no explicit one is open (SQLite autocommit).
func (db *DB) execStmt(st sqlparse.Stmt, args []any) (int64, error) {
	db.Statements++
	params, err := bindArgs(args)
	if err != nil {
		return 0, err
	}
	switch x := st.(type) {
	case *sqlparse.Begin:
		return 0, db.Begin()
	case *sqlparse.Commit:
		return 0, db.Commit()
	case *sqlparse.Rollback:
		return 0, db.Rollback()
	case *sqlparse.Pragma:
		return 0, db.execPragma(x)
	case *sqlparse.Select:
		// Exec on a SELECT: run it for side-effect-free parity.
		_, err := db.runSelect(x, params)
		return 0, err
	}

	auto := !db.explicitTx
	if auto {
		if err := db.pg.Begin(); err != nil {
			return 0, err
		}
	}
	n, err := db.execWrite(st, params)
	if err != nil {
		if auto {
			_ = db.pg.Rollback()
			_ = db.cat.reset()
		}
		return 0, err
	}
	if auto {
		if err := db.pg.Commit(); err != nil {
			return 0, err
		}
	}
	return n, nil
}

func (db *DB) execWrite(st sqlparse.Stmt, params []Value) (int64, error) {
	switch x := st.(type) {
	case *sqlparse.CreateTable:
		cols := make([]Column, len(x.Columns))
		for i, cd := range x.Columns {
			cols[i] = Column{Name: cd.Name, Affinity: cd.Type, PK: cd.PrimaryKey}
		}
		_, err := db.cat.createTable(x.Name, cols, x.IfNotExists)
		return 0, err
	case *sqlparse.CreateIndex:
		_, err := db.cat.createIndex(x.Name, x.Table, x.Columns, x.Unique, x.IfNotExists)
		return 0, err
	case *sqlparse.DropTable:
		return 0, db.cat.dropTable(x.Name, x.IfExists)
	case *sqlparse.DropIndex:
		return 0, db.cat.dropIndex(x.Name, x.IfExists)
	case *sqlparse.Insert:
		return db.execInsert(x, params)
	case *sqlparse.Update:
		return db.execUpdate(x, params)
	case *sqlparse.Delete:
		return db.execDelete(x, params)
	default:
		return 0, fmt.Errorf("%w: %T", ErrUnsupported, st)
	}
}

func (db *DB) execPragma(x *sqlparse.Pragma) error {
	switch x.Name {
	case "journal_mode":
		// The mode is fixed at Open (it shapes recovery); accept a
		// matching value, reject a change.
		if x.Value == "" {
			return nil
		}
		want := strings.ToLower(x.Value)
		have := db.pg.Mode().String()
		if want == "delete" {
			want = "rollback"
		}
		if want != have {
			return fmt.Errorf("%w: cannot switch journal_mode from %s to %s after open",
				ErrUnsupported, have, want)
		}
		return nil
	case "wal_checkpoint":
		return db.pg.Checkpoint()
	case "cache_size", "synchronous", "page_size", "temp_store", "locking_mode":
		return nil // accepted for compatibility
	default:
		return nil
	}
}

// CommitAtomic commits open transactions on several databases as one
// atomic unit. This is the multi-file transaction of the paper's §4.3:
// SQLite's rollback mode needs a master journal to approximate it
// ("awkward or incomplete"), while on X-FTL every file's page updates
// simply carry the same transaction id in the X-L2P table and one
// commit(t) makes them all durable together. Requires every database to
// be in Off (X-FTL) mode with an open transaction on the same file
// system.
func CommitAtomic(dbs ...*DB) error {
	if len(dbs) == 0 {
		return nil
	}
	if len(dbs) == 1 {
		return dbs[0].Commit()
	}
	// Stage every database's dirty pages: first into the file-system
	// cache, then to the device as write(t,p) under the lead file's
	// transaction id, so the whole group rides one X-L2P transaction.
	lead, err := stageGroup(dbs)
	if err != nil {
		return err
	}
	// One fsync on the lead commits the shared transaction, carrying
	// every file's data (and metadata) atomically.
	if err := lead.Fsync(); err != nil {
		return err
	}
	for _, db := range dbs {
		db.pg.FinishGroupCommit()
		db.explicitTx = false
	}
	return nil
}

// stageGroup pushes every database's dirty pages to the device under
// one shared transaction id (the staging half of CommitAtomic, reused
// by PrepareAtomic). Returns the lead file; its TxID after staging is
// the group's tid (0 if nothing was written).
func stageGroup(dbs []*DB) (*simfs.File, error) {
	for _, db := range dbs {
		if !db.explicitTx {
			return nil, fmt.Errorf("%w: group commit requires an open transaction on every database", ErrTxState)
		}
		if db.pg.Mode() != pager.Off {
			return nil, fmt.Errorf("%w: group commit requires X-FTL (journal mode off)", ErrUnsupported)
		}
		if db.fs != dbs[0].fs {
			return nil, fmt.Errorf("%w: group commit requires one shared file system", ErrMisuse)
		}
	}
	lead := dbs[0].pg.File()
	for _, db := range dbs {
		if err := db.pg.FlushForGroupCommit(); err != nil {
			return nil, err
		}
	}
	if err := lead.FlushAll(); err != nil {
		return nil, err
	}
	tid := lead.TxID()
	for _, db := range dbs[1:] {
		f := db.pg.File()
		if own := f.TxID(); own != 0 && own != tid {
			return nil, fmt.Errorf("%w: database %s has stolen writes under a different device transaction",
				ErrTxState, db.name)
		}
		if tid != 0 {
			f.AdoptTx(tid)
		}
		if err := f.FlushAll(); err != nil {
			return nil, err
		}
		if tid == 0 {
			tid = f.TxID()
			lead.AdoptTx(tid)
		}
	}
	return lead, nil
}

// PrepareAtomic runs phase one of a cross-shard two-phase commit for
// the open transactions on these databases (all on one file system):
// every dirty page is staged to the device under one shared transaction
// id, then a single prepare(t) makes the page set durable without
// making it visible. The returned tid names the participant to the
// fleet coordinator; 0 means the group wrote nothing and is trivially
// prepared. The transactions stay open until FinishPrepared delivers
// the coordinator's decision.
func PrepareAtomic(dbs ...*DB) (uint64, error) {
	if len(dbs) == 0 {
		return 0, nil
	}
	lead, err := stageGroup(dbs)
	if err != nil {
		return 0, err
	}
	group := make([]string, 0, len(dbs))
	for _, db := range dbs[1:] {
		group = append(group, db.pg.File().Name())
	}
	return lead.Prepare(group...)
}

// FinishPrepared applies the coordinator's commit/abort decision to a
// group previously staged with PrepareAtomic. The lead file resolves
// the shared device transaction (and the file-system namespace) once;
// each pager then reconciles its cache with the outcome.
func FinishPrepared(commit bool, dbs ...*DB) error {
	if len(dbs) == 0 {
		return nil
	}
	lead := dbs[0].pg.File()
	if err := lead.FinishPrepared(commit); err != nil {
		return err
	}
	for _, db := range dbs {
		// Followers shared the lead's tid; clear their handles without a
		// second device resolution.
		if f := db.pg.File(); f != lead && f.TxID() != 0 {
			f.AdoptTx(0)
		}
		db.pg.FinishPreparedTx(commit)
		db.explicitTx = false
	}
	return nil
}
