package ncq

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/nand"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// DefaultDepth is the queue depth used when Options leave it zero,
// matching SATA NCQ's 32 outstanding commands.
const DefaultDepth = 32

// Op identifies a queued device command.
type Op uint8

const (
	OpRead Op = iota
	OpWrite
	OpTrim
	OpBarrier
	OpReadTx
	OpWriteTx
	OpCommit
	OpAbort
	// OpSnapRead reads a logical page through an open snapshot handle
	// (TID carries the snapshot id). It deliberately does not take part
	// in per-LPN ordering: it targets the version pinned at snapshot
	// open, so an in-flight write to the same LPN — which lands in a
	// different physical page — imposes no ordering on it. That is the
	// device-level form of "readers never block on the writer".
	OpSnapRead
	// OpPrepare is phase one of a cross-device two-phase commit: the
	// transaction's X-L2P entries become durably "prepared" (they
	// survive a power cut as in-doubt instead of being discarded), but
	// no mapping changes are published. A later OpCommit or OpAbort —
	// possibly after a remount, driven by the fleet coordinator —
	// resolves the transaction. Like commit, it fences the queue.
	OpPrepare
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpTrim:
		return "trim"
	case OpBarrier:
		return "barrier"
	case OpReadTx:
		return "readtx"
	case OpWriteTx:
		return "writetx"
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	case OpSnapRead:
		return "snapread"
	case OpPrepare:
		return "prepare"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// IsBarrier reports whether the op fences the queue: it waits for every
// outstanding command to complete before starting, and nothing behind
// it starts until it completes. Commit and abort are barriers per the
// paper's §4.2 — a transaction's fate must not reorder around the page
// state changes it implies.
func (o Op) IsBarrier() bool {
	return o == OpBarrier || o == OpCommit || o == OpAbort || o == OpPrepare
}

// targetsLPN reports whether the op addresses one logical page (and so
// participates in per-LPN ordering).
func (o Op) targetsLPN() bool {
	switch o {
	case OpRead, OpWrite, OpTrim, OpReadTx, OpWriteTx:
		return true
	}
	return false
}

// Request is one queued command. The submitter fills Op plus the
// operands the op needs (LPN, TID, Data for writes, Buf for reads); the
// queue fills Err and the timing fields.
type Request struct {
	Op   Op
	LPN  int64
	TID  uint64
	Data []byte // page payload for writes; owned by the queue until return
	Buf  []byte // destination for reads

	// Sess, Req and Origin attribute the command for tracing: the host
	// session (mvcc.Session or raw I/O context) that issued it, the
	// serving-tier request it serves, and why. All are zero-valued (no
	// session, no request, host origin) when untraced.
	Sess   uint64
	Req    uint64
	Origin trace.Origin

	// Deadline, when positive, overrides the queue policy's per-attempt
	// deadline for this command (see RetryPolicy.Deadline).
	Deadline time.Duration

	Err       error
	Submitted time.Duration // virtual time the request entered the queue
	Started   time.Duration // virtual time its resource use could begin
	Done      time.Duration // virtual completion time
}

// Executor runs one command against the device firmware, charging its
// cost through the scheduler, and returns the command's error. The
// queue serializes calls.
type Executor func(*Request) error

// Queue is the NCQ command queue. Submission order is execution order
// for firmware state (the simulated firmware runs commands back to
// back), but completion times come from the channel scheduler and may
// reorder freely: a command's Done is when its last touched resource
// frees, so commands on idle channels complete out of order past
// slower predecessors. The virtual clock only advances when the queue
// is full (the host must wait for a slot), on barriers, and in
// SubmitWait.
//
// Queue is safe for concurrent use by multiple submitters.
type Queue struct {
	mu    sync.Mutex
	clock *simclock.Clock
	sched *Scheduler
	exec  Executor
	depth int

	outstanding []pending // in-flight commands, at most depth
	byLPN       map[int64]time.Duration // LPN -> completion gate

	// tracer, when non-nil, receives one KCmd event per submitted
	// command. A nil tracer costs one pointer compare on the submit
	// path and zero allocations (guarded by TestSubmitNoAllocs...).
	tracer *trace.Tracer

	// Deadline/retry plane (retry.go). The zero-value policy is the
	// legacy single-attempt queue; abandoned is set by power loss and
	// cleared by Resume after firmware recovery.
	policy    RetryPolicy
	health    HealthSink
	unitHint  func(*Request) int
	retries   int64 // attempts reissued
	timeouts  int64 // attempts that overran their deadline
	abandoned bool
	closed    bool // Close ran: reject all future submissions

	// Per-class latency and occupancy histograms.
	ReadLat    metrics.LatencyHist
	WriteLat   metrics.LatencyHist
	BarrierLat metrics.LatencyHist
	Depths     *metrics.DepthHist
}

type pending struct {
	done time.Duration
}

// New creates a queue of the given depth (0 selects DefaultDepth) over
// a scheduler and an executor.
func New(clock *simclock.Clock, sched *Scheduler, depth int, exec Executor) *Queue {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Queue{
		clock:  clock,
		sched:  sched,
		exec:   exec,
		depth:  depth,
		byLPN:  make(map[int64]time.Duration),
		Depths: metrics.NewDepthHist(depth),
	}
}

// Depth reports the configured queue depth.
func (q *Queue) Depth() int { return q.depth }

// SetTracer installs (or, with nil, removes) the event tracer.
func (q *Queue) SetTracer(t *trace.Tracer) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.tracer = t
}

// InFlight reports how many commands are currently outstanding.
func (q *Queue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.outstanding)
}

// Submit queues one command. It returns once the command has been
// issued (asynchronous completion): the request's Err and Done are
// filled in, but the virtual clock has only advanced if the queue was
// full or the op was a barrier. Drain makes all completions visible in
// virtual time.
func (q *Queue) Submit(r *Request) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.submitLocked(r)
}

// SubmitWait queues one command and waits for its completion in
// virtual time — the depth-1 synchronous path used by the classic
// Device methods.
func (q *Queue) SubmitWait(r *Request) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	err := q.submitLocked(r)
	q.clock.AdvanceTo(r.Done)
	// The command is no longer outstanding; retire its slot.
	for i := range q.outstanding {
		if q.outstanding[i].done == r.Done {
			q.outstanding[i] = q.outstanding[len(q.outstanding)-1]
			q.outstanding = q.outstanding[:len(q.outstanding)-1]
			break
		}
	}
	q.pruneLPNLocked()
	return err
}

func (q *Queue) submitLocked(r *Request) error {
	if q.closed {
		r.Submitted = q.clock.Now()
		r.Started, r.Done = r.Submitted, r.Submitted
		r.Err = ErrQueueClosed
		return r.Err
	}
	if q.abandoned {
		// The in-flight window died with the power; nothing is accepted
		// until firmware recovery resumes the queue.
		r.Submitted = q.clock.Now()
		r.Started, r.Done = r.Submitted, r.Submitted
		r.Err = errAbandonedPower
		return r.Err
	}
	r.Submitted = q.clock.Now()
	if r.Op.IsBarrier() {
		q.drainLocked()
	} else if len(q.outstanding) >= q.depth {
		q.retireEarliestLocked()
	}
	if q.health != nil && q.unitHint != nil && !r.Op.IsBarrier() {
		if u := q.unitHint(r); u >= 0 && q.health.Quarantined(u) {
			// Probe discipline: a command aimed at a quarantined unit
			// runs at queue depth 1, so a stuck die can hold at most one
			// command hostage at a time.
			q.drainLocked()
		}
	}
	deadline := q.policy.Deadline
	if r.Deadline > 0 {
		deadline = r.Deadline
	}
	maxAttempts := q.policy.MaxAttempts
	if maxAttempts < 1 {
		if deadline > 0 {
			maxAttempts = DefaultMaxAttempts
		} else {
			maxAttempts = 1
		}
	}
	if r.Op.IsBarrier() {
		// Barriers fence arbitrary amounts of queued work; exempt.
		deadline = 0
	}
	backoff := q.policy.Backoff
	if backoff <= 0 {
		backoff = DefaultBackoff
	}
	for attempt := 1; ; attempt++ {
		start := q.clock.Now()
		if r.Op.targetsLPN() {
			// Per-LPN ordering: a command on an LPN with an in-flight
			// predecessor may not begin until that predecessor completes.
			if gate, ok := q.byLPN[r.LPN]; ok && gate > start {
				start = gate
			}
		}
		q.sched.Begin(start)
		if q.tracer != nil {
			// Firmware about to run on this session's behalf: NAND events
			// it emits inherit the command's attribution.
			q.tracer.SetFirmSession(r.Sess)
			q.tracer.SetFirmReq(r.Req)
		}
		r.Err = q.exec(r)
		if q.tracer != nil {
			q.tracer.SetFirmSession(0)
			q.tracer.SetFirmReq(0)
		}
		r.Started = start
		r.Done = q.sched.End()
		if r.Err != nil && errors.Is(r.Err, nand.ErrPowerLost) {
			// Power died: every in-flight command is lost with it. Leave
			// the clock where it is; nothing completes, and the queue
			// stays abandoned until recovery resumes it.
			q.outstanding = q.outstanding[:0]
			clear(q.byLPN)
			q.abandoned = true
			r.Done = q.clock.Now()
			r.Err = fmt.Errorf("%w: %w", ErrPowerCutWindow, r.Err)
			return r.Err
		}
		unit := q.sched.LastUnit()
		timedOut := deadline > 0 && r.Done-start > deadline
		transient := r.Err != nil && errors.Is(r.Err, nand.ErrTransient)
		if !timedOut && !transient {
			if q.health != nil && unit >= 0 {
				q.health.CommandOK(unit, r.Op)
			}
			break
		}
		if timedOut {
			q.timeouts++
			if q.tracer != nil {
				q.tracer.Record(trace.Event{
					Layer: trace.LNCQ, Kind: trace.KTimeout,
					Start: start, Dur: deadline,
					Sess: r.Sess, Req: r.Req, TID: r.TID, Addr: r.LPN,
					Aux: int64(attempt), Unit: int32(unit),
					Origin: r.Origin, Op: uint8(r.Op),
				})
			}
		}
		if q.health != nil && unit >= 0 {
			q.health.CommandFault(unit, r.Op, timedOut)
		}
		if attempt >= maxAttempts {
			// Retry budget exhausted. A late success stands — the data
			// did arrive, just slowly; a still-failing command is
			// retired with the typed timeout sentinel, original cause
			// in the wrap chain.
			if r.Err != nil {
				r.Err = fmt.Errorf("%w (op %v lpn %d, %d attempts): %w",
					ErrCmdTimeout, r.Op, r.LPN, attempt, r.Err)
			}
			break
		}
		// The host observes the failure — a transient at its completion,
		// a timeout at deadline expiry — then reissues after an
		// exponentially growing backoff. A hung unit stays busy in the
		// scheduler, so reissued attempts keep timing out until the
		// stall drains; each one moves the clock at least a deadline
		// forward, bounding how long the stall can hold the command.
		q.retries++
		wait := r.Done
		if timedOut && start+deadline < wait {
			wait = start + deadline
		}
		q.clock.AdvanceTo(wait)
		q.clock.Advance(backoff)
		backoff *= 2
		if q.tracer != nil {
			q.tracer.Record(trace.Event{
				Layer: trace.LNCQ, Kind: trace.KRetry,
				Start: q.clock.Now(),
				Sess: r.Sess, Req: r.Req, TID: r.TID, Addr: r.LPN,
				Aux: int64(attempt), Unit: int32(unit),
				Origin: r.Origin, Op: uint8(r.Op),
			})
		}
	}
	q.outstanding = append(q.outstanding, pending{done: r.Done})
	if r.Op.targetsLPN() && r.Done > q.byLPN[r.LPN] {
		q.byLPN[r.LPN] = r.Done
	}
	q.observeLocked(r)
	if q.tracer != nil {
		origin := r.Origin
		if origin == trace.OHost && r.Op.IsBarrier() {
			origin = trace.OCommit
		}
		q.tracer.Record(trace.Event{
			Layer: trace.LNCQ, Kind: trace.KCmd,
			Start: r.Submitted, Dur: r.Done - r.Submitted, Disp: r.Started,
			Sess: r.Sess, Req: r.Req, TID: r.TID, Addr: r.LPN,
			Depth: int32(len(q.outstanding)), Origin: origin, Op: uint8(r.Op),
		})
	}
	if r.Op.IsBarrier() {
		// A barrier completes synchronously: nothing behind it may
		// start earlier, so the whole queue (just this command now)
		// drains to its completion time.
		q.drainLocked()
	}
	return r.Err
}

// retireEarliestLocked waits (in virtual time) for the earliest
// completion among outstanding commands, freeing one queue slot.
func (q *Queue) retireEarliestLocked() {
	mi := 0
	for i := range q.outstanding {
		if q.outstanding[i].done < q.outstanding[mi].done {
			mi = i
		}
	}
	t := q.outstanding[mi].done
	q.outstanding[mi] = q.outstanding[len(q.outstanding)-1]
	q.outstanding = q.outstanding[:len(q.outstanding)-1]
	q.clock.AdvanceTo(t)
	q.pruneLPNLocked()
}

// drainLocked completes every outstanding command in virtual time.
func (q *Queue) drainLocked() {
	var maxT time.Duration
	for i := range q.outstanding {
		if q.outstanding[i].done > maxT {
			maxT = q.outstanding[i].done
		}
	}
	q.outstanding = q.outstanding[:0]
	q.clock.AdvanceTo(maxT)
	clear(q.byLPN)
}

// pruneLPNLocked drops per-LPN gates that have passed.
func (q *Queue) pruneLPNLocked() {
	now := q.clock.Now()
	for l, t := range q.byLPN {
		if t <= now {
			delete(q.byLPN, l)
		}
	}
}

// Drain completes every outstanding command, advancing virtual time to
// the last completion. Benches call it before reading the clock.
func (q *Queue) Drain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.drainLocked()
}

// ErrQueueClosed fails commands submitted after Close.
var ErrQueueClosed = errors.New("ncq: queue closed")

// Close drains the queue and permanently rejects further submissions.
// Each fleet member owns an independent queue (own mutex, own clock),
// so closing one cannot block another member's drain; a straggler that
// submits to a closed member fails fast with ErrQueueClosed instead of
// mutating a half-torn-down device. Idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.drainLocked()
	q.closed = true
}

// Exclusive runs fn while holding the queue lock with no command in
// flight executing — the control-plane path for power cuts, restarts
// and metadata corruption, which must not interleave with commands.
// fn must not call back into the queue.
func (q *Queue) Exclusive(fn func()) {
	q.mu.Lock()
	defer q.mu.Unlock()
	fn()
}

// Abandon discards all outstanding commands without completing them
// (power loss: in-flight work dies with the device). The queue rejects
// further submissions with ErrAbandoned until Resume is called.
func (q *Queue) Abandon() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.outstanding = q.outstanding[:0]
	clear(q.byLPN)
	q.abandoned = true
}

func (q *Queue) observeLocked(r *Request) {
	lat := r.Done - r.Submitted
	switch {
	case r.Op.IsBarrier():
		q.BarrierLat.Observe(lat)
	case r.Op == OpRead || r.Op == OpReadTx || r.Op == OpSnapRead:
		q.ReadLat.Observe(lat)
	default:
		q.WriteLat.Observe(lat)
	}
	q.Depths.Observe(len(q.outstanding))
}
