package ncq

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/nand"
	"repro/internal/simclock"
)

// flakyDev fails each command with nand.ErrTransient until its
// per-request failure budget is used up, then succeeds.
func flakyDev(sched *Scheduler, failures int) Executor {
	left := map[*Request]int{}
	return func(r *Request) error {
		sched.ChargeController(ctrlCost)
		sched.ChargeUnit(int(r.LPN), nandCost)
		if _, ok := left[r]; !ok {
			left[r] = failures
		}
		if left[r] > 0 {
			left[r]--
			return nand.ErrTransient
		}
		return nil
	}
}

func TestTransientRetriedToSuccess(t *testing.T) {
	clk := simclock.New()
	sched := NewScheduler(clk, 4)
	q := New(clk, sched, 32, flakyDev(sched, 2))
	q.SetRetryPolicy(RetryPolicy{MaxAttempts: 4})
	r := &Request{Op: OpRead, LPN: 3}
	if err := q.SubmitWait(r); err != nil {
		t.Fatalf("transient fault escaped the retry loop: %v", err)
	}
	if got := q.Retries(); got != 2 {
		t.Errorf("Retries() = %d, want 2", got)
	}
	if q.Timeouts() != 0 {
		t.Errorf("Timeouts() = %d on a pure transient run", q.Timeouts())
	}
}

func TestExhaustedRetriesWrapTypedTimeout(t *testing.T) {
	clk := simclock.New()
	sched := NewScheduler(clk, 4)
	q := New(clk, sched, 32, flakyDev(sched, 1<<30)) // never succeeds
	q.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	err := q.SubmitWait(&Request{Op: OpRead, LPN: 0})
	if err == nil {
		t.Fatal("permanently failing command returned nil")
	}
	if !errors.Is(err, ErrCmdTimeout) {
		t.Errorf("exhausted command not matchable as ErrCmdTimeout: %v", err)
	}
	if !errors.Is(err, nand.ErrTransient) {
		t.Errorf("original cause lost from the wrap chain: %v", err)
	}
	if got := q.Retries(); got != 2 {
		t.Errorf("Retries() = %d, want 2 (3 attempts)", got)
	}
}

func TestHangTripsDeadlineThenDrains(t *testing.T) {
	clk, q := newQueue(4, 32)
	q.SetRetryPolicy(RetryPolicy{Deadline: 2 * nandCost, MaxAttempts: 16})
	q.sched.Hang(1, 20*nandCost) // unit 1 stalls well past the deadline
	r := &Request{Op: OpRead, LPN: 1}
	if err := q.SubmitWait(r); err != nil {
		t.Fatalf("hung unit escaped the retry budget: %v", err)
	}
	if q.Timeouts() == 0 {
		t.Error("stall tripped no deadline")
	}
	if q.Retries() == 0 {
		t.Error("timed-out command was never reissued")
	}
	// The reissue loop must have carried virtual time past the stall.
	if clk.Now() < 20*nandCost {
		t.Errorf("completed at %v, inside the %v stall", clk.Now(), 20*nandCost)
	}
}

func TestLateSuccessStandsAtExhaustion(t *testing.T) {
	_, q := newQueue(4, 32)
	// One attempt, tight deadline: the command times out but its data
	// did arrive — the queue must keep the late success.
	q.SetRetryPolicy(RetryPolicy{Deadline: time.Microsecond, MaxAttempts: 1})
	if err := q.SubmitWait(&Request{Op: OpRead, LPN: 0}); err != nil {
		t.Fatalf("late success was discarded: %v", err)
	}
	if q.Timeouts() != 1 {
		t.Errorf("Timeouts() = %d, want 1", q.Timeouts())
	}
}

func TestBarriersExemptFromDeadline(t *testing.T) {
	_, q := newQueue(4, 32)
	for i := 0; i < 8; i++ {
		if err := q.Submit(&Request{Op: OpWrite, LPN: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A deadline far smaller than the queued work the barrier must fence.
	q.SetRetryPolicy(RetryPolicy{Deadline: time.Microsecond, MaxAttempts: 2})
	if err := q.Submit(&Request{Op: OpBarrier}); err != nil {
		t.Fatalf("barrier hit the data-path deadline: %v", err)
	}
	if q.Timeouts() != 0 {
		t.Errorf("Timeouts() = %d; barriers must be deadline-exempt", q.Timeouts())
	}
}

func TestAbandonedQueueTypedRejection(t *testing.T) {
	_, q := newQueue(4, 32)
	q.Abandon()
	err := q.Submit(&Request{Op: OpWrite, LPN: 0})
	if err == nil {
		t.Fatal("abandoned queue accepted a command")
	}
	if !errors.Is(err, ErrAbandoned) {
		t.Errorf("rejection not matchable as ErrAbandoned: %v", err)
	}
	if !errors.Is(err, nand.ErrPowerLost) {
		t.Errorf("rejection not matchable as nand.ErrPowerLost (crash detection relies on it): %v", err)
	}
	q.Resume()
	if err := q.Submit(&Request{Op: OpWrite, LPN: 0}); err != nil {
		t.Fatalf("resumed queue rejected a command: %v", err)
	}
}

// TestAbandonRacesSubmissions runs concurrent submitters against
// repeated Abandon/Resume and Drain cycles. Run under -race; every
// outcome must be either a clean completion or the typed abandoned
// rejection — never a torn error or a deadlock.
func TestAbandonRacesSubmissions(t *testing.T) {
	_, q := newQueue(8, 16)
	var wg sync.WaitGroup
	const submitters = 4
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r := &Request{Op: OpWrite, LPN: base + int64(i)%32}
				err := q.Submit(r)
				if err != nil && !errors.Is(err, ErrAbandoned) {
					t.Errorf("unexpected submit error: %v", err)
					return
				}
			}
		}(int64(s) * 64)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			q.Abandon()
			q.Drain()
			q.Resume()
		}
	}()
	wg.Wait()
	q.Resume()
	if err := q.SubmitWait(&Request{Op: OpRead, LPN: 1}); err != nil {
		t.Fatalf("queue unusable after the race: %v", err)
	}
}
