// Command deadlines, retry policy and health reporting for the NCQ
// queue — the firmware's first line of defense against a misbehaving
// flash array.
//
// Real NVMe/SATA firmware never lets a single command hang the queue:
// commands carry deadlines, expired commands are aborted and reissued
// with backoff, and per-resource error counters feed a health model
// that can fence off a sick die. This file adds the queue half of that
// plane: per-command virtual-time deadlines (a command whose completion
// lands past submit+deadline is observed as timed out), a bounded
// retry loop with exponential virtual-time backoff (reads reissue in
// place; writes reissue through the copy-on-write allocator, which
// re-routes them to a healthy unit once allocation steers away), and a
// HealthSink callback so the FTL's channel-health tracker sees every
// per-unit outcome. The zero-value RetryPolicy preserves the legacy
// single-attempt, no-deadline behaviour exactly.
package ncq

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/nand"
)

// Typed, errors.Is-matchable queue failure sentinels.
var (
	// ErrCmdTimeout retires a command whose retry budget is exhausted
	// while it keeps failing or overrunning its deadline. The original
	// cause stays in the wrap chain.
	ErrCmdTimeout = errors.New("ncq: command deadline exceeded")
	// ErrAbandoned fails commands submitted to a queue whose in-flight
	// window was abandoned by a power cut and not yet resumed.
	ErrAbandoned = errors.New("ncq: queue abandoned")
	// ErrPowerCutWindow tags the command that was actually in flight
	// when power died — its window of work is lost with the device.
	ErrPowerCutWindow = errors.New("ncq: power cut inside command window")
)

// errAbandonedPower is the prebuilt error for submissions to an
// abandoned queue. It wraps nand.ErrPowerLost so existing
// errors.Is(err, nand.ErrPowerLost) crash detection keeps working, and
// is package-level so the rejection path never allocates.
var errAbandonedPower = fmt.Errorf("%w: %w", ErrAbandoned, nand.ErrPowerLost)

// Retry policy defaults, used when RetryPolicy enables retries but
// leaves a knob zero.
const (
	DefaultMaxAttempts = 8
	DefaultBackoff     = 250 * time.Microsecond
)

// RetryPolicy configures per-command deadlines and the retry loop. The
// zero value disables both: one attempt, no deadline — exactly the
// pre-policy queue.
type RetryPolicy struct {
	// Deadline is the per-attempt virtual-time budget for data-path
	// commands; an attempt whose completion lands later than
	// start+Deadline is observed as timed out and reissued. Zero
	// disables timeout detection. Barrier-class ops (commit, abort,
	// barrier) are exempt — they fence arbitrary amounts of queued
	// work by design.
	Deadline time.Duration
	// MaxAttempts bounds execution attempts per command. Zero means 1
	// (no retries) unless Deadline is set, in which case it means
	// DefaultMaxAttempts.
	MaxAttempts int
	// Backoff is the initial virtual-time backoff between attempts,
	// doubling per retry. Zero selects DefaultBackoff.
	Backoff time.Duration
}

// HealthSink receives per-unit command outcomes from the queue. The
// FTL's channel-health tracker implements it to count faults toward
// quarantine thresholds and clean completions toward re-admission.
// Calls arrive under the queue lock with no scheduler command open, so
// the sink may run firmware work (a quarantine drain) but must not
// call back into the queue.
type HealthSink interface {
	// CommandOK reports a command whose final attempt completed
	// cleanly on unit.
	CommandOK(unit int, op Op)
	// CommandFault reports one failed attempt on unit: a deadline
	// overrun (timedOut true) or a transient interface fault.
	CommandFault(unit int, op Op, timedOut bool)
	// Quarantined reports whether the unit is currently fenced; the
	// queue drops to depth 1 (probe discipline) for commands that
	// target a fenced unit.
	Quarantined(unit int) bool
}

// SetRetryPolicy installs the queue's deadline/retry policy.
func (q *Queue) SetRetryPolicy(p RetryPolicy) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.policy = p
}

// SetHealthSink installs (or, with nil, removes) the health sink.
func (q *Queue) SetHealthSink(h HealthSink) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.health = h
}

// SetUnitHint installs a resolver mapping a request to the channel/way
// unit it will touch (-1 when unknown), used to fence commands aimed
// at a quarantined unit before they execute. Called under the queue
// lock.
func (q *Queue) SetUnitHint(fn func(*Request) int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.unitHint = fn
}

// Retries reports how many command attempts were reissued.
func (q *Queue) Retries() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.retries
}

// Timeouts reports how many attempts overran their deadline.
func (q *Queue) Timeouts() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.timeouts
}

// Resume re-opens an abandoned queue after firmware recovery
// (storage.Device.Restart): submissions are accepted again.
func (q *Queue) Resume() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.abandoned = false
}
