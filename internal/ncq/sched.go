// Package ncq implements an NCQ-style asynchronous command queue and a
// multi-channel NAND scheduler for the simulated flash device.
//
// The paper's Barefoot controller hides an 8-channel flash array behind
// a queue-depth-1 SATA link: one host command at a time, but firmware
// free to stripe its own bulk work (mapping flushes, GC copy-back)
// across channels. The old model collapsed that into a scalar latency
// divisor. Here the channel/way units are explicit resources with
// busy-until timestamps in simclock virtual time, and a command queue
// (default depth 32) lets multiple host commands be in flight so their
// NAND work overlaps on different units — host reads/writes, GC
// copy-backs, meta-ring flushes and X-FTL commit-time work all contend
// for the same units.
//
// Timing decomposes per command as
//
//	controller/bus time  — command overhead + data transfer +
//	                       barrier bookkeeping; one command at a time
//	                       (the SATA link and firmware CPU serialize)
//	channel/way time     — page reads/programs occupy the page's unit
//	                       (ppn mod units) for the full cell latency;
//	                       block erases occupy every unit (superblock)
//
// A command's completion time is the max over the segments it touched.
// Because physical pages stripe round-robin across units, an evenly
// striped internal stream of total cell cost T finishes in T/units —
// exactly the legacy InternalParallelism divisor — while single-page
// host commands still pay full latency at queue depth 1.
package ncq

import (
	"time"

	"repro/internal/simclock"
)

// Scheduler tracks per-unit and controller busy-until timestamps and
// accumulates the cost of the command currently being charged. It
// implements nand.Charger. Callers (the Queue) serialize access; a
// charge arriving with no open command falls back to advancing the
// clock directly, preserving bare-chip semantics.
type Scheduler struct {
	clock *simclock.Clock
	units []time.Duration // busy-until per channel/way unit
	ctrl  time.Duration   // busy-until of the controller/bus resource

	active    bool
	start     time.Duration // earliest instant the command may use any resource
	nandStart time.Duration // earliest instant its NAND phase may begin
	end       time.Duration // completion: max end over touched segments
	lastUnit  int           // last unit charged by the current command; -1 none
}

// NewScheduler creates a scheduler over the given number of channel/way
// units (at least 1).
func NewScheduler(clock *simclock.Clock, units int) *Scheduler {
	if units < 1 {
		units = 1
	}
	return &Scheduler{clock: clock, units: make([]time.Duration, units)}
}

// Units reports the number of channel/way units.
func (s *Scheduler) Units() int { return len(s.units) }

// Begin opens a command whose resource use may start no earlier than t.
func (s *Scheduler) Begin(t time.Duration) {
	s.active = true
	s.start, s.nandStart, s.end = t, t, t
	s.lastUnit = -1
}

// LastUnit reports the channel/way unit the most recently charged page
// operation of the current (or just-closed) command landed on, or -1
// when the command touched no single unit (erases, pure controller
// work). The queue uses it to attribute timeouts and retries to a unit
// for health tracking.
func (s *Scheduler) LastUnit() int { return s.lastUnit }

// Hang stalls one unit: its busy-until time jumps forward by stall from
// now (or from its current busy-until, if later). This is the explicit,
// deterministic form of the fault model's HangProb mechanism, used by
// chaos harnesses and degraded-mode benches to stick a die on demand.
func (s *Scheduler) Hang(unit int, stall time.Duration) {
	u := unit % len(s.units)
	if now := s.clock.Now(); s.units[u] < now {
		s.units[u] = now
	}
	s.units[u] += stall
}

// End closes the current command and returns its completion time.
func (s *Scheduler) End() time.Duration {
	s.active = false
	return s.end
}

// Reset clears all busy-until state (power cycle: every channel idle).
func (s *Scheduler) Reset() {
	s.active = false
	s.ctrl = 0
	for i := range s.units {
		s.units[i] = 0
	}
}

// ChargeController serializes d on the controller/bus resource and
// pushes the command's NAND phase behind it (the flash operation cannot
// start before the command and its data have crossed the link).
func (s *Scheduler) ChargeController(d time.Duration) {
	if !s.active {
		s.clock.Advance(d)
		return
	}
	st := max(s.start, s.ctrl)
	e := st + d
	s.ctrl = e
	if e > s.nandStart {
		s.nandStart = e
	}
	if e > s.end {
		s.end = e
	}
}

// ChargeUnit occupies one channel/way unit for d, starting when both
// the command's NAND phase and the unit are ready, and returns the
// occupied interval. Implements nand.Charger.
func (s *Scheduler) ChargeUnit(unit int, d time.Duration) (time.Duration, time.Duration) {
	if !s.active {
		e := s.clock.Advance(d)
		return e - d, e
	}
	u := unit % len(s.units)
	s.lastUnit = u
	st := max(s.nandStart, s.units[u])
	e := st + d
	s.units[u] = e
	if e > s.end {
		s.end = e
	}
	return st, e
}

// ChargeAll occupies every unit for d starting when the last of them is
// free (block erase over a striped superblock), and returns the
// occupied interval. Implements nand.Charger.
func (s *Scheduler) ChargeAll(d time.Duration) (time.Duration, time.Duration) {
	if !s.active {
		e := s.clock.Advance(d)
		return e - d, e
	}
	st := s.nandStart
	for _, b := range s.units {
		if b > st {
			st = b
		}
	}
	e := st + d
	for i := range s.units {
		s.units[i] = e
	}
	if e > s.end {
		s.end = e
	}
	return st, e
}

// BusyUntil reports a unit's busy-until timestamp (tests and metrics).
func (s *Scheduler) BusyUntil(unit int) time.Duration {
	return s.units[unit%len(s.units)]
}
