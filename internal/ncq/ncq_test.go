package ncq

import (
	"testing"
	"time"

	"repro/internal/nand"
	"repro/internal/simclock"
)

const (
	ctrlCost = 100 * time.Microsecond
	nandCost = 1 * time.Millisecond
)

// fakeDev charges a fixed controller cost plus one NAND charge on the
// unit derived from the request's LPN, mimicking the device executor.
func fakeDev(sched *Scheduler) Executor {
	return func(r *Request) error {
		sched.ChargeController(ctrlCost)
		switch r.Op {
		case OpBarrier:
			sched.ChargeAll(nandCost)
		default:
			sched.ChargeUnit(int(r.LPN), nandCost)
		}
		return nil
	}
}

func newQueue(units, depth int) (*simclock.Clock, *Queue) {
	clk := simclock.New()
	sched := NewScheduler(clk, units)
	q := New(clk, sched, depth, fakeDev(sched))
	return clk, q
}

func TestSubmitWaitSequentialCost(t *testing.T) {
	clk, q := newQueue(4, 32)
	r := &Request{Op: OpWrite, LPN: 0}
	if err := q.SubmitWait(r); err != nil {
		t.Fatal(err)
	}
	// Depth-1: controller then NAND, strictly sequential.
	if want := ctrlCost + nandCost; clk.Now() != want {
		t.Errorf("elapsed %v, want %v", clk.Now(), want)
	}
	if q.InFlight() != 0 {
		t.Errorf("InFlight = %d after SubmitWait", q.InFlight())
	}
}

func TestOutOfOrderCompletion(t *testing.T) {
	clk, q := newQueue(4, 32)
	// Fill unit 1 so the second command lands on a busy unit while the
	// third uses an idle one and completes first.
	a := &Request{Op: OpWrite, LPN: 1}
	b := &Request{Op: OpWrite, LPN: 1 + 4} // same unit as a
	c := &Request{Op: OpWrite, LPN: 2}     // idle unit
	for _, r := range []*Request{a, b, c} {
		if err := q.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if clk.Now() != 0 {
		t.Errorf("clock advanced to %v on async submits", clk.Now())
	}
	if !(c.Done < b.Done) {
		t.Errorf("idle-unit command finished at %v, busy-unit at %v; want out-of-order completion", c.Done, b.Done)
	}
	q.Drain()
	if clk.Now() != b.Done {
		t.Errorf("drained clock %v, want last completion %v", clk.Now(), b.Done)
	}
}

func TestDepthGating(t *testing.T) {
	clk, q := newQueue(8, 2)
	var reqs []*Request
	for i := 0; i < 3; i++ {
		r := &Request{Op: OpWrite, LPN: int64(i)}
		reqs = append(reqs, r)
		if err := q.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	// The third submit found the queue full and had to wait for the
	// earliest completion before issuing.
	if clk.Now() == 0 {
		t.Error("queue-full submit did not advance the clock")
	}
	if reqs[2].Started < reqs[0].Done {
		t.Errorf("third command started %v before a slot freed at %v", reqs[2].Started, reqs[0].Done)
	}
	if q.InFlight() > 2 {
		t.Errorf("InFlight = %d, want <= depth 2", q.InFlight())
	}
}

func TestBarrierFencesQueue(t *testing.T) {
	clk, q := newQueue(4, 32)
	a := &Request{Op: OpWrite, LPN: 0}
	b := &Request{Op: OpWrite, LPN: 1}
	bar := &Request{Op: OpBarrier}
	after := &Request{Op: OpWrite, LPN: 2}
	for _, r := range []*Request{a, b, bar, after} {
		if err := q.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if bar.Started < a.Done || bar.Started < b.Done {
		t.Errorf("barrier started %v before outstanding completions %v/%v", bar.Started, a.Done, b.Done)
	}
	if after.Started < bar.Done {
		t.Errorf("post-barrier command started %v before barrier completed %v", after.Started, bar.Done)
	}
	if clk.Now() < bar.Done {
		t.Errorf("barrier did not drain the clock: %v < %v", clk.Now(), bar.Done)
	}
}

func TestPerLPNOrdering(t *testing.T) {
	_, q := newQueue(8, 32)
	a := &Request{Op: OpWrite, LPN: 5}
	b := &Request{Op: OpRead, LPN: 5, Buf: nil}
	other := &Request{Op: OpWrite, LPN: 6}
	for _, r := range []*Request{a, b, other} {
		if err := q.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if b.Started < a.Done {
		t.Errorf("same-LPN successor started %v before predecessor completed %v", b.Started, a.Done)
	}
	if other.Started >= a.Done {
		t.Errorf("unrelated LPN was gated: started %v, gate %v", other.Started, a.Done)
	}
}

func TestThroughputScalesWithUnits(t *testing.T) {
	elapsed := func(units int) time.Duration {
		clk, q := newQueue(units, 32)
		for i := 0; i < 64; i++ {
			if err := q.Submit(&Request{Op: OpWrite, LPN: int64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		q.Drain()
		return clk.Now()
	}
	one, eight := elapsed(1), elapsed(8)
	if ratio := float64(one) / float64(eight); ratio < 3 {
		t.Errorf("8-unit speedup %.2fx, want >= 3x (1 unit: %v, 8 units: %v)", ratio, one, eight)
	}
}

func TestChargeAllOccupiesEveryUnit(t *testing.T) {
	clk := simclock.New()
	sched := NewScheduler(clk, 4)
	sched.Begin(0)
	sched.ChargeUnit(2, nandCost)
	sched.ChargeAll(3 * time.Millisecond)
	end := sched.End()
	if want := nandCost + 3*time.Millisecond; end != want {
		t.Errorf("erase after busy unit completed at %v, want %v", end, want)
	}
	for u := 0; u < 4; u++ {
		if sched.BusyUntil(u) != end {
			t.Errorf("unit %d busy-until %v, want %v", u, sched.BusyUntil(u), end)
		}
	}
}

func TestStrayChargeAdvancesClock(t *testing.T) {
	clk := simclock.New()
	sched := NewScheduler(clk, 4)
	sched.ChargeUnit(0, nandCost)
	if clk.Now() != nandCost {
		t.Errorf("stray charge advanced %v, want %v", clk.Now(), nandCost)
	}
}

func TestPowerLossClearsQueue(t *testing.T) {
	clk := simclock.New()
	sched := NewScheduler(clk, 4)
	fail := false
	q := New(clk, sched, 32, func(r *Request) error {
		sched.ChargeUnit(int(r.LPN), nandCost)
		if fail {
			return nand.ErrPowerLost
		}
		return nil
	})
	if err := q.Submit(&Request{Op: OpWrite, LPN: 0}); err != nil {
		t.Fatal(err)
	}
	fail = true
	before := clk.Now()
	if err := q.Submit(&Request{Op: OpWrite, LPN: 1}); err == nil {
		t.Fatal("expected power-loss error")
	}
	if q.InFlight() != 0 {
		t.Errorf("InFlight = %d after power loss", q.InFlight())
	}
	if clk.Now() != before {
		t.Errorf("clock advanced %v across power loss", clk.Now()-before)
	}
}

func TestLatencyHistogramsPopulate(t *testing.T) {
	_, q := newQueue(4, 8)
	for i := 0; i < 16; i++ {
		if err := q.Submit(&Request{Op: OpWrite, LPN: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	q.Drain()
	ws := q.WriteLat.Snapshot()
	if ws.Count != 16 {
		t.Fatalf("write hist count = %d, want 16", ws.Count)
	}
	if ws.P50 <= 0 || ws.P99 < ws.P50 || ws.Max < ws.P99 {
		t.Errorf("implausible percentiles: %v", ws)
	}
	if q.Depths.Mean() <= 1 {
		t.Errorf("depth hist mean %.1f, want > 1 at saturation", q.Depths.Mean())
	}
}
