package ncq

import (
	"testing"

	"repro/internal/trace"
)

// The tracing hook must stay out of the submit hot path when disabled:
// one nil pointer compare, zero allocations. This is the guard the
// tracer's documentation promises.
func TestSubmitNoAllocsWhenTracingDisabled(t *testing.T) {
	_, q := newQueue(4, 8)
	r := &Request{Op: OpWrite, LPN: 3}
	// Warm up internal slices/maps so steady state is measured.
	for i := 0; i < 32; i++ {
		if err := q.SubmitWait(r); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := q.SubmitWait(r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SubmitWait allocates %.1f objects/op with tracing disabled, want 0", allocs)
	}
}

// Request-id attribution rides the same disabled-tracing fast path:
// carrying a ReqID must not reintroduce allocations (the firmware
// context update is gated behind the nil-tracer check).
func TestSubmitNoAllocsWithReqID(t *testing.T) {
	_, q := newQueue(4, 8)
	r := &Request{Op: OpWrite, LPN: 3, Sess: 9, Req: 7}
	for i := 0; i < 32; i++ {
		if err := q.SubmitWait(r); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := q.SubmitWait(r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SubmitWait allocates %.1f objects/op with ReqID set and tracing disabled, want 0", allocs)
	}
}

// With a tracer attached, every submitted command must produce exactly
// one KCmd event carrying the request's attribution.
func TestSubmitRecordsCmdEvents(t *testing.T) {
	clk, q := newQueue(4, 8)
	tr := trace.New()
	tr.Attach(clk, "ncq-test")
	q.SetTracer(tr)
	const n = 10
	for i := 0; i < n; i++ {
		r := &Request{Op: OpWrite, LPN: int64(i), Sess: 7, Origin: trace.OHost}
		if err := q.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	q.Drain()
	evs := tr.Events()
	if len(evs) != n {
		t.Fatalf("recorded %d events, want %d", len(evs), n)
	}
	for _, ev := range evs {
		if ev.Layer != trace.LNCQ || ev.Kind != trace.KCmd {
			t.Errorf("event %+v: want NCQ/KCmd", ev)
		}
		if ev.Sess != 7 {
			t.Errorf("event sess %d, want 7", ev.Sess)
		}
		if ev.Origin != trace.OHost {
			t.Errorf("event origin %v, want host", ev.Origin)
		}
		if ev.Dur <= 0 {
			t.Errorf("event duration %v, want > 0", ev.Dur)
		}
		if ev.Disp < ev.Start || ev.Disp > ev.Start+ev.Dur {
			t.Errorf("dispatch %v outside [%v, %v]", ev.Disp, ev.Start, ev.Start+ev.Dur)
		}
	}
}
