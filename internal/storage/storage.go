// Package storage models the host-visible storage device: the SATA
// command interface of the OpenSSD board, extended as in §4.2 of the
// paper with transaction-aware reads and writes plus commit and abort
// commands (encoded, as on the prototype, by extending the trim
// command's parameter set).
//
// A Device wraps either the baseline FTL or X-FTL and charges the
// command-level costs the NAND layer cannot see: per-command controller
// firmware time, bus transfer time for page payloads, and the flat cost
// of a write barrier (which on OpenSSD persists the mapping table,
// §6.3.4). Two Profiles reproduce the paper's hardware: the OpenSSD
// Barefoot board and the Samsung S830 used for Figure 9.
package storage

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/nand"
	"repro/internal/simclock"
)

// ErrNotTransactional is returned when a transactional command is sent
// to a device running the baseline (non-X) FTL.
var ErrNotTransactional = errors.New("storage: device does not support transactional commands")

// ErrWornOut re-exports the firmware's typed worn-out error: the
// bad-block replacement reserve is exhausted and the device has gone
// permanently read-only. Query Health() for the full state.
var ErrWornOut = ftl.ErrWornOut

// HealthState classifies the device's media condition.
type HealthState uint8

const (
	// Healthy: no blocks retired.
	Healthy HealthState = iota
	// Degraded: blocks have been retired but spares remain; fully
	// operational.
	Degraded
	// WornOut: the spare reserve is exhausted; writes fail with
	// ErrWornOut and only reads are served.
	WornOut
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case WornOut:
		return "worn-out"
	default:
		return fmt.Sprintf("HealthState(%d)", uint8(s))
	}
}

// Health is the device's queryable wear state (a SMART-style report).
type Health struct {
	State         HealthState
	RetiredBlocks int // blocks retired to the bad-block table
	SpareBlocks   int // size of the replacement reserve
}

func (h Health) String() string {
	return fmt.Sprintf("%v (retired %d of %d spare)", h.State, h.RetiredBlocks, h.SpareBlocks)
}

// Profile describes one storage device model.
type Profile struct {
	Name string
	// Nand is the flash geometry and raw cell timing.
	Nand nand.Config
	// CmdOverhead is controller firmware time charged per host command.
	CmdOverhead time.Duration
	// TransferPerPage is bus time to move one page between host and
	// device.
	TransferPerPage time.Duration
	// BarrierOverhead is the flat extra cost of a write barrier beyond
	// the mapping-table flush it triggers (cache drain, FUA handling).
	BarrierOverhead time.Duration
	// Channels is the internal flash parallelism available to queued
	// I/O. Single-stream latency is unaffected; multi-threaded
	// workloads (Figure 9) scale throughput by up to this factor.
	Channels int
}

// OpenSSD returns the profile of the paper's prototype platform: the
// Indilinx Barefoot controller (87.5 MHz ARM) with Samsung K9LCG08U1M
// MLC NAND (8 KB pages, 128 pages/block) behind SATA 2.0.
func OpenSSD() Profile {
	return Profile{
		Name:            "OpenSSD",
		Nand:            nand.DefaultConfig(),
		CmdOverhead:     120 * time.Microsecond,
		TransferPerPage: 30 * time.Microsecond,
		BarrierOverhead: 1 * time.Millisecond,
		Channels:        4,
	}
}

// S830 returns the profile of the Samsung S830 (128 GB, MLC) SSD used
// as the one-generation-newer comparison device in Figure 9: faster
// controller, SATA 3.0, quicker NAND path and more usable parallelism.
func S830() Profile {
	n := nand.DefaultConfig()
	n.ReadLatency = 90 * time.Microsecond
	n.ProgLatency = 600 * time.Microsecond
	n.EraseLatency = 2 * time.Millisecond
	n.InternalParallelism = 16
	return Profile{
		Name:            "S830",
		Nand:            n,
		CmdOverhead:     25 * time.Microsecond,
		TransferPerPage: 15 * time.Microsecond,
		BarrierOverhead: 300 * time.Microsecond,
		Channels:        8,
	}
}

// Options configures device construction beyond the hardware profile.
type Options struct {
	// Transactional selects the X-FTL firmware; otherwise the baseline
	// page-mapping FTL runs.
	Transactional bool
	// FTL overrides the derived FTL configuration (zero value: derive
	// from the profile with ftl.DefaultConfig).
	FTL ftl.Config
	// XFTL overrides the X-FTL configuration when Transactional.
	XFTL core.Config
	// Fault installs a NAND fault model (nil: ideal flash). See
	// nand.DefaultFaultModel for realistic MLC rates.
	Fault *nand.FaultModel
}

// Device is a simulated flash storage device exposing the (extended)
// SATA command set. It is not safe for concurrent use.
type Device struct {
	prof  Profile
	clock *simclock.Clock
	flash *metrics.FlashCounters
	base  *ftl.FTL
	x     *core.XFTL // nil when running the baseline firmware

	cmds     int64 // host commands processed
	barriers int64 // barrier-class commands (flush/commit)

	inflight atomic.Bool // concurrent-use detector (see enter)
}

// New builds a device from a profile. The clock may be shared across
// devices and with the host stack; nil allocates a fresh one.
func New(prof Profile, clock *simclock.Clock, opts Options) (*Device, error) {
	if clock == nil {
		clock = simclock.New()
	}
	flash := &metrics.FlashCounters{}
	chip, err := nand.New(prof.Nand, clock, flash)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	if opts.Fault != nil {
		chip.SetFaultModel(opts.Fault)
	}
	fcfg := opts.FTL
	if fcfg.LogicalPages == 0 {
		// Derive the configuration, honoring an explicit spare-reserve
		// request if it exceeds the derived default.
		spare := fcfg.SpareBlocks
		fcfg = ftl.DefaultConfig(prof.Nand)
		if spare > fcfg.SpareBlocks {
			fcfg.SpareBlocks = spare
		}
	}
	base, err := ftl.New(chip, fcfg, flash)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	d := &Device{prof: prof, clock: clock, flash: flash, base: base}
	if opts.Transactional {
		xcfg := opts.XFTL
		if xcfg.TableEntries == 0 {
			xcfg = core.DefaultConfig()
		}
		x, err := core.New(base, xcfg, flash)
		if err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		d.x = x
	}
	return d, nil
}

// Profile returns the hardware profile the device was built from.
func (d *Device) Profile() Profile { return d.prof }

// Clock returns the simulated clock the device advances.
func (d *Device) Clock() *simclock.Clock { return d.clock }

// FlashStats returns the device-internal counters (Table 1 FTL-side).
func (d *Device) FlashStats() *metrics.FlashCounters { return d.flash }

// Transactional reports whether the device runs the X-FTL firmware.
func (d *Device) Transactional() bool { return d.x != nil }

// XFTL returns the transactional layer, or nil on a baseline device.
func (d *Device) XFTL() *core.XFTL { return d.x }

// FTL returns the baseline mapping layer (always present).
func (d *Device) FTL() *ftl.FTL { return d.base }

// PageSize reports the device page size in bytes.
func (d *Device) PageSize() int { return d.base.PageSize() }

// LogicalPages reports the exported capacity in pages.
func (d *Device) LogicalPages() int64 { return d.base.LogicalPages() }

// Commands reports how many host commands the device has processed.
func (d *Device) Commands() int64 { return d.cmds }

// enter flags the device busy for the duration of one command and
// panics if another command is already in flight: Device is documented
// as not safe for concurrent use, and silent interleaving corrupts the
// simulated clock and the mapping state. The check is one atomic CAS
// per command — cheap enough to stay on in production use.
func (d *Device) enter() func() {
	if !d.inflight.CompareAndSwap(false, true) {
		panic("storage: Device is not safe for concurrent use; serialize commands externally")
	}
	return func() { d.inflight.Store(false) }
}

// lost inspects a command error: when an armed power cut tripped
// mid-command (the error wraps nand.ErrPowerLost), the device drops its
// volatile firmware state exactly as PowerCut does, so the caller must
// Restart before issuing further commands.
func (d *Device) lost(err error) error {
	if err != nil && errors.Is(err, nand.ErrPowerLost) {
		d.powerCutFirmware()
	}
	return err
}

func (d *Device) powerCutFirmware() {
	if d.x != nil {
		d.x.PowerCut()
	} else {
		d.base.PowerCut()
	}
}

// chargeCmd accounts controller time for one host command, with
// optional payload transfer.
func (d *Device) chargeCmd(pages int) {
	d.cmds++
	d.clock.Advance(d.prof.CmdOverhead + time.Duration(pages)*d.prof.TransferPerPage)
}

// Read services a plain read command for the last committed version.
func (d *Device) Read(lpn int64, buf []byte) error {
	defer d.enter()()
	d.chargeCmd(1)
	if d.x != nil {
		return d.lost(d.x.Read(ftl.LPN(lpn), buf))
	}
	return d.lost(d.base.Read(ftl.LPN(lpn), buf))
}

// Write services a plain (non-transactional) write command.
func (d *Device) Write(lpn int64, data []byte) error {
	defer d.enter()()
	d.chargeCmd(1)
	if d.x != nil {
		return d.lost(d.x.Write(ftl.LPN(lpn), data))
	}
	return d.lost(d.base.Write(ftl.LPN(lpn), data))
}

// Trim discards a logical page.
func (d *Device) Trim(lpn int64) error {
	defer d.enter()()
	d.chargeCmd(0)
	if d.x != nil {
		return d.lost(d.x.Trim(ftl.LPN(lpn)))
	}
	return d.lost(d.base.Unmap(ftl.LPN(lpn)))
}

// Barrier services a write-barrier / flush-cache command: the mapping
// table becomes durable. On OpenSSD this is the expensive operation
// behind every fsync (§6.3.4).
func (d *Device) Barrier() error {
	defer d.enter()()
	d.chargeCmd(0)
	d.barriers++
	d.clock.Advance(d.prof.BarrierOverhead)
	if d.x != nil {
		return d.lost(d.x.Barrier())
	}
	return d.lost(d.base.Barrier())
}

// ReadTx services read(t,p): the transaction sees its own uncommitted
// version if it has one.
func (d *Device) ReadTx(tid uint64, lpn int64, buf []byte) error {
	if d.x == nil {
		return ErrNotTransactional
	}
	defer d.enter()()
	d.chargeCmd(1)
	return d.lost(d.x.ReadTx(core.TxID(tid), ftl.LPN(lpn), buf))
}

// WriteTx services write(t,p): a copy-on-write page update recorded in
// the X-L2P table under the transaction id.
func (d *Device) WriteTx(tid uint64, lpn int64, data []byte) error {
	if d.x == nil {
		return ErrNotTransactional
	}
	defer d.enter()()
	d.chargeCmd(1)
	return d.lost(d.x.WriteTx(core.TxID(tid), ftl.LPN(lpn), data))
}

// Commit services commit(t). It doubles as the write barrier for the
// transaction's fsync ("X-FTL invokes a commit command once as part of
// a fsync system call, which plays the same role as a write barrier").
func (d *Device) Commit(tid uint64) error {
	if d.x == nil {
		return ErrNotTransactional
	}
	defer d.enter()()
	d.chargeCmd(0)
	d.barriers++
	d.clock.Advance(d.prof.BarrierOverhead)
	return d.lost(d.x.Commit(core.TxID(tid)))
}

// Abort services abort(t): the transaction's new versions are
// abandoned inside the device.
func (d *Device) Abort(tid uint64) error {
	if d.x == nil {
		return ErrNotTransactional
	}
	defer d.enter()()
	d.chargeCmd(0)
	return d.lost(d.x.Abort(core.TxID(tid)))
}

// PowerCut simulates pulling the plug at a command boundary: volatile
// controller state is lost and the chip refuses further operations
// until Restart.
func (d *Device) PowerCut() {
	defer d.enter()()
	d.base.Chip().PowerOff()
	d.powerCutFirmware()
}

// PowerCutAfter schedules a power cut during the n-th NAND operation
// (read, program or erase) counted from now; n == 1 interrupts the very
// next operation. Unlike PowerCut, this lands the cut in the middle of
// firmware activity — mid-GC, mid-barrier, mid-commit — leaving torn
// pages or half-erased blocks behind. When the cut trips, the in-flight
// command returns an error wrapping nand.ErrPowerLost and the device
// behaves as after PowerCut until Restart.
func (d *Device) PowerCutAfter(n int64) {
	defer d.enter()()
	d.base.Chip().ArmPowerCut(n)
}

// NANDOps reports how many NAND operations (reads, programs, erases)
// the device has executed; it is the time base for PowerCutAfter.
func (d *Device) NANDOps() int64 { return d.base.Chip().OpCount() }

// Restart powers the device back on and runs firmware recovery,
// charging its cost on the simulated clock.
func (d *Device) Restart() error {
	defer d.enter()()
	d.base.Chip().Restore()
	if d.x != nil {
		return d.x.Restart()
	}
	return d.base.Restart()
}

// Health reports the device's wear state: how many blocks have been
// retired against the spare reserve, and whether the reserve is
// exhausted (WornOut — writes fail with ErrWornOut).
func (d *Device) Health() Health {
	h := Health{
		RetiredBlocks: d.base.BadBlockCount(),
		SpareBlocks:   d.base.Config().SpareBlocks,
	}
	switch {
	case d.base.WornOut():
		h.State = WornOut
	case h.RetiredBlocks > 0:
		h.State = Degraded
	}
	return h
}

// LastRecovery reports how the most recent Restart brought the device
// up: the fast mapping-image path, or the full-device OOB scan, with
// page counts and the simulated time it cost.
func (d *Device) LastRecovery() ftl.RecoveryInfo { return d.base.LastRecovery() }

// CorruptMeta is a fault-injection hook (test/bench only): it corrupts
// or erases every flash page of one persisted metadata structure —
// "map" for the mapping-table group pages, or a meta slot name (such as
// "bbt" or "xl2p") for that slot's chain. It returns the number of
// pages damaged. The next Restart must detect the damage and fall back
// to the OOB scan path.
func (d *Device) CorruptMeta(target string, erase bool) (int, error) {
	return d.base.CorruptMeta(target, erase)
}
