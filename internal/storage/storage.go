// Package storage models the host-visible storage device: the SATA
// command interface of the OpenSSD board, extended as in §4.2 of the
// paper with transaction-aware reads and writes plus commit and abort
// commands (encoded, as on the prototype, by extending the trim
// command's parameter set).
//
// A Device wraps either the baseline FTL or X-FTL and charges the
// command-level costs the NAND layer cannot see: per-command controller
// firmware time, bus transfer time for page payloads, and the flat cost
// of a write barrier (which on OpenSSD persists the mapping table,
// §6.3.4). Two Profiles reproduce the paper's hardware: the OpenSSD
// Barefoot board and the Samsung S830 used for Figure 9.
//
// Commands flow through an NCQ-style queue (internal/ncq): Queue()
// exposes asynchronous submission at the configured depth, while the
// classic synchronous methods are depth-1 wrappers that wait for their
// own completion. The queue also makes the Device safe for concurrent
// use by multiple submitters.
package storage

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/nand"
	"repro/internal/ncq"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// ErrNotTransactional is returned when a transactional command is sent
// to a device running the baseline (non-X) FTL.
var ErrNotTransactional = errors.New("storage: device does not support transactional commands")

// ErrWornOut re-exports the firmware's typed worn-out error: the
// bad-block replacement reserve is exhausted and the device has gone
// permanently read-only. Query Health() for the full state.
var ErrWornOut = ftl.ErrWornOut

// HealthState classifies the device's media condition.
type HealthState uint8

const (
	// Healthy: no blocks retired.
	Healthy HealthState = iota
	// Degraded: blocks have been retired but spares remain; fully
	// operational.
	Degraded
	// WornOut: the spare reserve is exhausted; writes fail with
	// ErrWornOut and only reads are served.
	WornOut
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case WornOut:
		return "worn-out"
	default:
		return fmt.Sprintf("HealthState(%d)", uint8(s))
	}
}

// Health is the device's queryable wear state (a SMART-style report).
type Health struct {
	State         HealthState
	RetiredBlocks int // blocks retired to the bad-block table
	SpareBlocks   int // size of the replacement reserve
}

func (h Health) String() string {
	return fmt.Sprintf("%v (retired %d of %d spare)", h.State, h.RetiredBlocks, h.SpareBlocks)
}

// Profile describes one storage device model.
type Profile struct {
	Name string
	// Nand is the flash geometry and raw cell timing.
	Nand nand.Config
	// CmdOverhead is controller firmware time charged per host command.
	CmdOverhead time.Duration
	// TransferPerPage is bus time to move one page between host and
	// device.
	TransferPerPage time.Duration
	// BarrierOverhead is the flat extra cost of a write barrier beyond
	// the mapping-table flush it triggers (cache drain, FUA handling).
	BarrierOverhead time.Duration
	// Channels is the internal flash parallelism available to queued
	// I/O. Single-stream latency is unaffected; multi-threaded
	// workloads (Figure 9) scale throughput by up to this factor.
	Channels int
}

// OpenSSD returns the profile of the paper's prototype platform: the
// Indilinx Barefoot controller (87.5 MHz ARM) with Samsung K9LCG08U1M
// MLC NAND (8 KB pages, 128 pages/block) behind SATA 2.0.
func OpenSSD() Profile {
	return Profile{
		Name:            "OpenSSD",
		Nand:            nand.DefaultConfig(),
		CmdOverhead:     120 * time.Microsecond,
		TransferPerPage: 30 * time.Microsecond,
		BarrierOverhead: 1 * time.Millisecond,
		Channels:        4,
	}
}

// S830 returns the profile of the Samsung S830 (128 GB, MLC) SSD used
// as the one-generation-newer comparison device in Figure 9: faster
// controller, SATA 3.0, quicker NAND path and more usable parallelism.
func S830() Profile {
	n := nand.DefaultConfig()
	n.ReadLatency = 90 * time.Microsecond
	n.ProgLatency = 600 * time.Microsecond
	n.EraseLatency = 2 * time.Millisecond
	n.Channels = 8
	n.Ways = 2
	return Profile{
		Name:            "S830",
		Nand:            n,
		CmdOverhead:     25 * time.Microsecond,
		TransferPerPage: 15 * time.Microsecond,
		BarrierOverhead: 300 * time.Microsecond,
		Channels:        8,
	}
}

// Options configures device construction beyond the hardware profile.
type Options struct {
	// Transactional selects the X-FTL firmware; otherwise the baseline
	// page-mapping FTL runs.
	Transactional bool
	// FTL overrides the derived FTL configuration (zero value: derive
	// from the profile with ftl.DefaultConfig).
	FTL ftl.Config
	// XFTL overrides the X-FTL configuration when Transactional.
	XFTL core.Config
	// Fault installs a NAND fault model (nil: ideal flash). See
	// nand.DefaultFaultModel for realistic MLC rates.
	Fault *nand.FaultModel
	// QueueDepth is the NCQ command-queue depth; 0 selects
	// ncq.DefaultDepth (32). The synchronous methods behave the same at
	// any depth; Queue() submitters share the configured slots.
	QueueDepth int
	// CmdDeadline is the per-attempt virtual-time deadline for data-path
	// commands. Zero disables timeout detection entirely (one attempt,
	// no deadline — the legacy device).
	CmdDeadline time.Duration
	// CmdRetries bounds execution attempts per command. Zero means
	// ncq.DefaultMaxAttempts when CmdDeadline is set, else 1.
	CmdRetries int
	// CmdBackoff is the initial virtual-time backoff between command
	// retry attempts, doubling per retry. Zero selects
	// ncq.DefaultBackoff.
	CmdBackoff time.Duration
}

// Device is a simulated flash storage device exposing the (extended)
// SATA command set. It is safe for concurrent use: commands serialize
// on the internal queue lock while their simulated latencies overlap
// across the flash channels.
type Device struct {
	prof  Profile
	clock *simclock.Clock
	flash *metrics.FlashCounters
	base  *ftl.FTL
	x     *core.XFTL // nil when running the baseline firmware

	sched *ncq.Scheduler
	q     *ncq.Queue

	tracer *trace.Tracer

	cmds     atomic.Int64 // host commands processed
	barriers atomic.Int64 // barrier-class commands (flush/commit)
}

// New builds a device from a profile. The clock may be shared across
// devices and with the host stack; nil allocates a fresh one.
func New(prof Profile, clock *simclock.Clock, opts Options) (*Device, error) {
	if clock == nil {
		clock = simclock.New()
	}
	flash := &metrics.FlashCounters{}
	chip, err := nand.New(prof.Nand, clock, flash)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	if opts.Fault != nil {
		chip.SetFaultModel(opts.Fault)
	}
	fcfg := opts.FTL
	if fcfg.LogicalPages == 0 {
		// Derive the configuration, honoring an explicit spare-reserve
		// request if it exceeds the derived default.
		spare := fcfg.SpareBlocks
		fcfg = ftl.DefaultConfig(prof.Nand)
		if spare > fcfg.SpareBlocks {
			fcfg.SpareBlocks = spare
		}
	}
	base, err := ftl.New(chip, fcfg, flash)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	d := &Device{prof: prof, clock: clock, flash: flash, base: base}
	if opts.Transactional {
		xcfg := opts.XFTL
		if xcfg.TableEntries == 0 {
			xcfg = core.DefaultConfig()
		}
		x, err := core.New(base, xcfg, flash)
		if err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		d.x = x
	}
	d.sched = ncq.NewScheduler(clock, prof.Nand.Units())
	chip.SetCharger(d.sched)
	d.q = ncq.New(clock, d.sched, opts.QueueDepth, d.execute)
	// The degraded-mode plane is always wired (it is inert without a
	// deadline policy or an injected fault model): every per-unit command
	// outcome feeds the FTL's channel-health tracker, and commands aimed
	// at a quarantined unit are fenced to depth 1.
	d.q.SetHealthSink(healthSink{base})
	d.q.SetUnitHint(d.unitHint)
	d.q.SetRetryPolicy(ncq.RetryPolicy{
		Deadline:    opts.CmdDeadline,
		MaxAttempts: opts.CmdRetries,
		Backoff:     opts.CmdBackoff,
	})
	return d, nil
}

// healthSink adapts the FTL's channel-health tracker to the queue's
// HealthSink interface. Calls arrive under the queue lock with no
// scheduler command open, which is exactly the context the tracker's
// quarantine drain (GC-style relocations) expects.
type healthSink struct{ f *ftl.FTL }

func (h healthSink) CommandOK(unit int, _ ncq.Op) { h.f.NoteCommandOK(unit) }
func (h healthSink) CommandFault(unit int, _ ncq.Op, timedOut bool) {
	h.f.NoteCommandFault(unit, timedOut)
}
func (h healthSink) Quarantined(unit int) bool { return h.f.UnitQuarantined(unit) }

// unitHint predicts which channel/way unit a request will touch, so the
// queue can fence commands aimed at a quarantined unit before they
// execute. Only read-class commands are predictable (their target page
// is already mapped); writes go wherever the steered frontier points.
func (d *Device) unitHint(r *ncq.Request) int {
	switch r.Op {
	case ncq.OpRead, ncq.OpReadTx, ncq.OpSnapRead:
		if ppn := d.base.Mapping(ftl.LPN(r.LPN)); ppn != nand.InvalidPPN {
			return d.base.Chip().Unit(ppn)
		}
	}
	return -1
}

// HangUnit stalls one channel/way unit for the given virtual time, as
// if its die stopped answering: commands landing on it overrun their
// deadline until the stall drains. A deterministic chaos hook — the
// explicit form of the fault model's HangProb mechanism.
func (d *Device) HangUnit(unit int, stall time.Duration) {
	d.q.Exclusive(func() { d.sched.Hang(unit, stall) })
}

// QuarantineUnit fences one channel/way unit directly, bypassing the
// error thresholds (chaos harnesses and degraded-mode benches). The
// firmware keeps at least one unit in service.
func (d *Device) QuarantineUnit(unit int) error {
	var err error
	d.q.Exclusive(func() { err = d.base.ForceQuarantine(unit) })
	return err
}

// QuarantinePressure reports how many channel/way units are currently
// quarantined and how many the device has in total. Unlike most device
// introspection it is safe to call from any goroutine while commands
// are in flight (the count is an atomic mirror), so a serving tier's
// circuit breaker can sample it on every admission decision.
func (d *Device) QuarantinePressure() (quarantined, units int) {
	return int(d.base.QuarantinedUnits()), d.prof.Nand.Units()
}

// Profile returns the hardware profile the device was built from.
func (d *Device) Profile() Profile { return d.prof }

// Clock returns the simulated clock the device advances.
func (d *Device) Clock() *simclock.Clock { return d.clock }

// FlashStats returns the device-internal counters (Table 1 FTL-side).
func (d *Device) FlashStats() *metrics.FlashCounters { return d.flash }

// Transactional reports whether the device runs the X-FTL firmware.
func (d *Device) Transactional() bool { return d.x != nil }

// XFTL returns the transactional layer, or nil on a baseline device.
func (d *Device) XFTL() *core.XFTL { return d.x }

// FTL returns the baseline mapping layer (always present).
func (d *Device) FTL() *ftl.FTL { return d.base }

// PageSize reports the device page size in bytes.
func (d *Device) PageSize() int { return d.base.PageSize() }

// LogicalPages reports the exported capacity in pages.
func (d *Device) LogicalPages() int64 { return d.base.LogicalPages() }

// Commands reports how many host commands the device has processed.
func (d *Device) Commands() int64 { return d.cmds.Load() }

// SetTracer installs (or, with nil, removes) the event tracer on every
// device layer: the command queue (KCmd events), the firmware (GC and
// commit/abort/recovery spans) and the NAND chip (per-operation
// events). Install before submitting traced traffic.
func (d *Device) SetTracer(t *trace.Tracer) {
	d.tracer = t
	d.q.SetTracer(t)
	d.base.SetTracer(t)
	d.base.Chip().SetTracer(t)
	if d.x != nil {
		d.x.SetTracer(t)
	}
}

// RegisterGauges publishes the device's live stat gauges into a
// registry: free blocks, pinned snapshot pages (with peak), queue
// depth, and wear spread. The providers read firmware state without
// taking the queue lock; sample the registry while the device is
// quiescent (after Queue().Drain()).
func (d *Device) RegisterGauges(reg *trace.Registry) {
	reg.Register("ftl.free_blocks", func() int64 { return int64(d.base.FreeBlockCount()) })
	reg.Register("ncq.in_flight", func() int64 { return int64(d.q.InFlight()) })
	reg.Register("ncq.retries", d.q.Retries)
	reg.Register("ncq.timeouts", d.q.Timeouts)
	reg.Register("ftl.quarantined_units", d.base.QuarantinedUnits)
	reg.Register("ftl.quarantine_trips", d.base.QuarantineTrips)
	reg.Register("ftl.degraded_ms", func() int64 { return d.base.DegradedTime().Milliseconds() })
	reg.Register("nand.wear_spread", func() int64 { return d.base.Chip().WearSpread() })
	reg.Register("nand.retired_blocks", func() int64 { return int64(d.base.BadBlockCount()) })
	if d.x != nil {
		reg.Register("xftl.pinned_pages", func() int64 { return int64(d.x.PinnedPages()) })
		reg.Register("xftl.peak_pinned_pages", func() int64 { return int64(d.x.PeakPinnedPages()) })
		reg.Register("xftl.active_entries", func() int64 { return int64(d.x.ActiveEntries()) })
		reg.Register("xftl.open_snapshots", func() int64 { return int64(d.x.OpenSnapshots()) })
		reg.Register("xftl.snap_evictions", func() int64 { return d.x.Stats().SnapEvictions })
	}
}

// Queue returns the device's NCQ command queue for asynchronous
// submission at the configured depth. Multiple goroutines may submit
// concurrently; use Queue().Drain() to surface all completions in
// virtual time before reading the clock.
func (d *Device) Queue() *ncq.Queue { return d.q }

// execute runs one queued command against the firmware. The queue
// serializes calls under its lock with a scheduler command open, so
// the firmware state mutates in submission order while the latency
// charges land on the contended channel/way resources.
func (d *Device) execute(r *ncq.Request) error {
	switch r.Op {
	case ncq.OpRead:
		d.chargeCmd(1)
		if d.x != nil {
			return d.lost(d.x.Read(ftl.LPN(r.LPN), r.Buf))
		}
		return d.lost(d.base.Read(ftl.LPN(r.LPN), r.Buf))
	case ncq.OpWrite:
		d.chargeCmd(1)
		if d.x != nil {
			return d.lost(d.x.Write(ftl.LPN(r.LPN), r.Data))
		}
		return d.lost(d.base.Write(ftl.LPN(r.LPN), r.Data))
	case ncq.OpTrim:
		d.chargeCmd(0)
		if d.x != nil {
			return d.lost(d.x.Trim(ftl.LPN(r.LPN)))
		}
		return d.lost(d.base.Unmap(ftl.LPN(r.LPN)))
	case ncq.OpBarrier:
		d.chargeCmd(0)
		d.barriers.Add(1)
		d.sched.ChargeController(d.prof.BarrierOverhead)
		if d.x != nil {
			return d.lost(d.x.Barrier())
		}
		return d.lost(d.base.Barrier())
	case ncq.OpReadTx:
		if d.x == nil {
			return ErrNotTransactional
		}
		d.chargeCmd(1)
		return d.lost(d.x.ReadTx(core.TxID(r.TID), ftl.LPN(r.LPN), r.Buf))
	case ncq.OpWriteTx:
		if d.x == nil {
			return ErrNotTransactional
		}
		d.chargeCmd(1)
		return d.lost(d.x.WriteTx(core.TxID(r.TID), ftl.LPN(r.LPN), r.Data))
	case ncq.OpCommit:
		if d.x == nil {
			return ErrNotTransactional
		}
		d.chargeCmd(0)
		d.barriers.Add(1)
		d.sched.ChargeController(d.prof.BarrierOverhead)
		return d.lost(d.x.Commit(core.TxID(r.TID)))
	case ncq.OpAbort:
		if d.x == nil {
			return ErrNotTransactional
		}
		d.chargeCmd(0)
		return d.lost(d.x.Abort(core.TxID(r.TID)))
	case ncq.OpSnapRead:
		if d.x == nil {
			return ErrNotTransactional
		}
		d.chargeCmd(1)
		return d.lost(d.x.SnapshotRead(core.SnapID(r.TID), ftl.LPN(r.LPN), r.Buf))
	case ncq.OpPrepare:
		if d.x == nil {
			return ErrNotTransactional
		}
		d.chargeCmd(0)
		d.barriers.Add(1)
		d.sched.ChargeController(d.prof.BarrierOverhead)
		return d.lost(d.x.Prepare(core.TxID(r.TID)))
	default:
		return fmt.Errorf("storage: unknown op %v", r.Op)
	}
}

// lost inspects a command error: when an armed power cut tripped
// mid-command (the error wraps nand.ErrPowerLost), the device drops its
// volatile firmware state exactly as PowerCut does, so the caller must
// Restart before issuing further commands.
func (d *Device) lost(err error) error {
	if err != nil && errors.Is(err, nand.ErrPowerLost) {
		d.powerCutFirmware()
	}
	return err
}

func (d *Device) powerCutFirmware() {
	if d.x != nil {
		d.x.PowerCut()
	} else {
		d.base.PowerCut()
	}
}

// chargeCmd accounts controller time for one host command, with
// optional payload transfer. Called from execute with a scheduler
// command open, so the cost serializes on the controller/bus resource.
func (d *Device) chargeCmd(pages int) {
	d.cmds.Add(1)
	d.sched.ChargeController(d.prof.CmdOverhead + time.Duration(pages)*d.prof.TransferPerPage)
}

// Read services a plain read command for the last committed version.
func (d *Device) Read(lpn int64, buf []byte) error {
	return d.q.SubmitWait(&ncq.Request{Op: ncq.OpRead, LPN: lpn, Buf: buf})
}

// Write services a plain (non-transactional) write command.
func (d *Device) Write(lpn int64, data []byte) error {
	return d.q.SubmitWait(&ncq.Request{Op: ncq.OpWrite, LPN: lpn, Data: data})
}

// Trim discards a logical page.
func (d *Device) Trim(lpn int64) error {
	return d.q.SubmitWait(&ncq.Request{Op: ncq.OpTrim, LPN: lpn})
}

// Barrier services a write-barrier / flush-cache command: the mapping
// table becomes durable. On OpenSSD this is the expensive operation
// behind every fsync (§6.3.4). In the queue it is a full fence.
func (d *Device) Barrier() error {
	return d.q.SubmitWait(&ncq.Request{Op: ncq.OpBarrier})
}

// ReadTx services read(t,p): the transaction sees its own uncommitted
// version if it has one.
func (d *Device) ReadTx(tid uint64, lpn int64, buf []byte) error {
	if d.x == nil {
		return ErrNotTransactional
	}
	return d.q.SubmitWait(&ncq.Request{Op: ncq.OpReadTx, TID: tid, LPN: lpn, Buf: buf})
}

// WriteTx services write(t,p): a copy-on-write page update recorded in
// the X-L2P table under the transaction id.
func (d *Device) WriteTx(tid uint64, lpn int64, data []byte) error {
	if d.x == nil {
		return ErrNotTransactional
	}
	return d.q.SubmitWait(&ncq.Request{Op: ncq.OpWriteTx, TID: tid, LPN: lpn, Data: data})
}

// Commit services commit(t). It doubles as the write barrier for the
// transaction's fsync ("X-FTL invokes a commit command once as part of
// a fsync system call, which plays the same role as a write barrier"),
// and fences the queue per §4.2.
func (d *Device) Commit(tid uint64) error {
	if d.x == nil {
		return ErrNotTransactional
	}
	return d.q.SubmitWait(&ncq.Request{Op: ncq.OpCommit, TID: tid})
}

// Abort services abort(t): the transaction's new versions are
// abandoned inside the device. Like commit, it fences the queue.
func (d *Device) Abort(tid uint64) error {
	if d.x == nil {
		return ErrNotTransactional
	}
	return d.q.SubmitWait(&ncq.Request{Op: ncq.OpAbort, TID: tid})
}

// Prepare services prepare(t), phase one of a cross-device two-phase
// commit: the transaction's page set becomes durable without becoming
// visible, and the device guarantees a later Commit will succeed. Like
// commit, it fences the queue and pays the barrier overhead.
func (d *Device) Prepare(tid uint64) error {
	if d.x == nil {
		return ErrNotTransactional
	}
	return d.q.SubmitWait(&ncq.Request{Op: ncq.OpPrepare, TID: tid})
}

// InDoubt lists prepared transactions the last Restart recovered whose
// coordinator decision is unknown to this device. Each must be resolved
// with Commit or Abort.
func (d *Device) InDoubt() []uint64 {
	if d.x == nil {
		return nil
	}
	ids := d.x.InDoubt()
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	return out
}

// SnapshotOpen pins the committed state as of now and returns a
// snapshot handle id plus the commit sequence the snapshot observed.
// It is a control-plane command (DRAM-only in the firmware: one
// sequence number is recorded), so it carries no simulated latency; it
// serializes with in-flight command execution on the queue lock,
// observing exactly the commits that have executed. The sequence keys
// reader-pool generations: two snapshots with equal sequence (and no
// intervening power cut) pin identical committed states.
func (d *Device) SnapshotOpen() (core.SnapID, uint64, error) {
	if d.x == nil {
		return 0, 0, ErrNotTransactional
	}
	var (
		id  core.SnapID
		seq uint64
		err error
	)
	d.q.Exclusive(func() {
		id, err = d.x.OpenSnapshot()
		seq = d.x.CommitSeq()
	})
	return id, seq, err
}

// CommitSeq samples the device's committed-batch sequence without
// entering the command queue (lock-free atomic mirror). Returns 0 on a
// non-transactional device.
func (d *Device) CommitSeq() uint64 {
	if d.x == nil {
		return 0
	}
	return d.x.CommitSeq()
}

// SnapshotClose releases a snapshot handle, letting the device reclaim
// superseded page versions no other snapshot still pins.
func (d *Device) SnapshotClose(id core.SnapID) error {
	if d.x == nil {
		return ErrNotTransactional
	}
	var err error
	d.q.Exclusive(func() {
		err = d.x.CloseSnapshot(id)
	})
	return err
}

// SnapshotRead reads a logical page as of the snapshot's open,
// synchronously. Concurrent readers that want queue-depth overlap
// submit ncq.OpSnapRead through Queue() instead.
func (d *Device) SnapshotRead(id core.SnapID, lpn int64, buf []byte) error {
	if d.x == nil {
		return ErrNotTransactional
	}
	return d.q.SubmitWait(&ncq.Request{Op: ncq.OpSnapRead, TID: uint64(id), LPN: lpn, Buf: buf})
}

// PowerCut simulates pulling the plug at a command boundary: volatile
// controller state is lost, in-flight queued commands die with it, and
// the chip refuses further operations until Restart.
func (d *Device) PowerCut() {
	d.q.Exclusive(func() {
		d.base.Chip().PowerOff()
		d.powerCutFirmware()
	})
	d.q.Abandon()
}

// PowerCutAfter schedules a power cut during the n-th NAND operation
// (read, program or erase) counted from now; n == 1 interrupts the very
// next operation. Unlike PowerCut, this lands the cut in the middle of
// firmware activity — mid-GC, mid-barrier, mid-commit — leaving torn
// pages or half-erased blocks behind. When the cut trips, the in-flight
// command returns an error wrapping nand.ErrPowerLost, the queue drops
// everything outstanding, and the device behaves as after PowerCut
// until Restart.
func (d *Device) PowerCutAfter(n int64) {
	d.q.Exclusive(func() {
		d.base.Chip().ArmPowerCut(n)
	})
}

// NANDOps reports how many NAND operations (reads, programs, erases)
// the device has executed; it is the time base for PowerCutAfter.
func (d *Device) NANDOps() int64 { return d.base.Chip().OpCount() }

// Restart powers the device back on and runs firmware recovery,
// charging its cost on the simulated clock. Recovery runs with the
// channel scheduler detached — the device is offline, so its bulk
// scans pipeline across idle channels like any firmware-internal
// stream — and every channel comes back idle.
func (d *Device) Restart() error {
	var err error
	d.q.Exclusive(func() {
		start := d.tracer.Now()
		prevOrigin := d.tracer.SetFirmOrigin(trace.ORecovery)
		chip := d.base.Chip()
		chip.Restore()
		chip.SetCharger(nil)
		if d.x != nil {
			err = d.x.Restart()
		} else {
			err = d.base.Restart()
		}
		chip.SetCharger(d.sched)
		d.sched.Reset()
		d.tracer.SetFirmOrigin(prevOrigin)
		if d.tracer != nil && err == nil {
			info := d.base.LastRecovery()
			d.tracer.Record(trace.Event{
				Layer: trace.LXFTL, Kind: trace.KXRecover,
				Start: start, Dur: d.tracer.Now() - start,
				Aux: info.ScanPages, Origin: trace.ORecovery,
			})
		}
	})
	if err == nil {
		// Re-open the abandoned queue only once recovery succeeded —
		// and outside the Exclusive block (Resume takes the queue lock).
		d.q.Resume()
	}
	return err
}

// Health reports the device's wear state: how many blocks have been
// retired against the spare reserve, and whether the reserve is
// exhausted (WornOut — writes fail with ErrWornOut).
func (d *Device) Health() Health {
	h := Health{
		RetiredBlocks: d.base.BadBlockCount(),
		SpareBlocks:   d.base.Config().SpareBlocks,
	}
	switch {
	case d.base.WornOut():
		h.State = WornOut
	case h.RetiredBlocks > 0:
		h.State = Degraded
	}
	return h
}

// LastRecovery reports how the most recent Restart brought the device
// up: the fast mapping-image path, or the full-device OOB scan, with
// page counts and the simulated time it cost.
func (d *Device) LastRecovery() ftl.RecoveryInfo { return d.base.LastRecovery() }

// CorruptMeta is a fault-injection hook (test/bench only): it corrupts
// or erases every flash page of one persisted metadata structure —
// "map" for the mapping-table group pages, or a meta slot name (such as
// "bbt" or "xl2p") for that slot's chain. It returns the number of
// pages damaged. The next Restart must detect the damage and fall back
// to the OOB scan path.
func (d *Device) CorruptMeta(target string, erase bool) (int, error) {
	var (
		n   int
		err error
	)
	d.q.Exclusive(func() {
		n, err = d.base.CorruptMeta(target, erase)
	})
	return n, err
}
