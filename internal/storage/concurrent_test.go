package storage

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/nand"
	"repro/internal/ncq"
	"repro/internal/simclock"
)

// TestConcurrentStressWithPowerCut drives a transactional device from
// several goroutines at full queue depth — mixed reads, plain writes,
// transactional writes and commits — arms a power cut that lands in the
// middle of the in-flight stream, restarts, and checks that every
// transaction whose commit completed before the cut is durable. Run
// with -race; the submitters genuinely overlap on the queue lock, the
// atomic counters and the histograms.
func TestConcurrentStressWithPowerCut(t *testing.T) {
	const (
		workers     = 4
		opsPer      = 300
		lpnsPer     = 24
		commitEvery = 8
	)
	d, err := New(smallProfile(), simclock.New(), Options{Transactional: true, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	q := d.Queue()

	// Oracle of committed state: lpn -> stamp recorded only after the
	// commit covering it returned success. inDoubt holds stamps whose
	// commit was interrupted (they may land either way).
	var (
		mu        sync.Mutex
		committed = map[int64]uint64{}
		inDoubt   = map[int64]uint64{}
		sawCut    bool
	)

	page := func(d *Device, lpn int64, stamp uint64) []byte {
		b := make([]byte, d.PageSize())
		binary.LittleEndian.PutUint64(b, stamp)
		binary.LittleEndian.PutUint64(b[8:], uint64(lpn))
		return b
	}

	// Arm the cut once the stream is flowing: worker 0 signals after
	// enough ops that all workers are submitting.
	flowing := make(chan struct{})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			base := int64(w * lpnsPer)
			tid := uint64(w + 1)
			pendingTx := map[int64]uint64{} // uncommitted stamps this tx
			stamp := uint64(w) << 32
			buf := make([]byte, d.PageSize())
			for i := 0; i < opsPer; i++ {
				if w == 0 && i == 50 {
					close(flowing)
				}
				lpn := base + rng.Int63n(lpnsPer)
				var r ncq.Request
				switch {
				case i%commitEvery == commitEvery-1:
					r = ncq.Request{Op: ncq.OpCommit, TID: tid}
				case rng.Intn(5) == 0:
					r = ncq.Request{Op: ncq.OpRead, LPN: lpn, Buf: buf}
				default:
					stamp++
					r = ncq.Request{Op: ncq.OpWriteTx, TID: tid, LPN: lpn, Data: page(d, lpn, stamp)}
				}
				err := q.Submit(&r)
				if err != nil {
					// The command that trips the cut returns
					// nand.ErrPowerLost; anything submitted after it sees
					// the poisoned firmware's core.ErrPowerCut.
					if errors.Is(err, nand.ErrPowerLost) || errors.Is(err, core.ErrPowerCut) {
						mu.Lock()
						sawCut = true
						if r.Op == ncq.OpCommit {
							for l, s := range pendingTx {
								inDoubt[l] = s
							}
						}
						mu.Unlock()
						return
					}
					t.Errorf("worker %d op %d (%v): %v", w, i, r.Op, err)
					return
				}
				switch r.Op {
				case ncq.OpWriteTx:
					pendingTx[r.LPN] = stamp
				case ncq.OpCommit:
					mu.Lock()
					for l, s := range pendingTx {
						committed[l] = s
					}
					mu.Unlock()
					pendingTx = map[int64]uint64{}
				}
			}
		}(w)
	}

	// Sample the race-sensitive accessors while submitters run, then
	// land the cut mid-queue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-flowing
		_ = d.Commands()
		_ = d.NANDOps()
		_ = q.InFlight()
		_ = q.WriteLat.Snapshot()
		_ = q.Depths.Mean()
		d.PowerCutAfter(400)
	}()
	wg.Wait()

	mu.Lock()
	cut := sawCut
	mu.Unlock()
	if !cut {
		t.Fatal("power cut never tripped; stress stream too short")
	}

	if err := d.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	buf := make([]byte, d.PageSize())
	for lpn, want := range committed {
		if err := d.Read(lpn, buf); err != nil {
			t.Fatalf("Read(%d) after recovery: %v", lpn, err)
		}
		got := binary.LittleEndian.Uint64(buf)
		if got == want {
			continue
		}
		if alt, ok := inDoubt[lpn]; ok && got == alt {
			continue // interrupted commit landed; atomicity is torture's job
		}
		t.Errorf("lpn %d = stamp %#x after recovery, want committed %#x", lpn, got, want)
	}

	// The device must be fully usable again, including at depth.
	for i := 0; i < 40; i++ {
		if err := q.Submit(&ncq.Request{Op: ncq.OpWrite, LPN: int64(i % 8), Data: page(d, int64(i%8), 1)}); err != nil {
			t.Fatalf("post-recovery write %d: %v", i, err)
		}
	}
	if err := d.Barrier(); err != nil {
		t.Fatalf("post-recovery barrier: %v", err)
	}
}
