package storage

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/ftl"
	"repro/internal/simclock"
)

// smallProfile shrinks the device so tests stay fast.
func smallProfile() Profile {
	p := OpenSSD()
	p.Nand.Blocks = 32
	p.Nand.PagesPerBlock = 16
	p.Nand.PageSize = 512
	return p
}

func newDev(t *testing.T, transactional bool) *Device {
	t.Helper()
	d, err := New(smallProfile(), simclock.New(), Options{Transactional: transactional})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func devPage(d *Device, fill byte) []byte {
	b := make([]byte, d.PageSize())
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestProfilesAreDistinct(t *testing.T) {
	o, s := OpenSSD(), S830()
	if o.Name == s.Name {
		t.Error("profiles share a name")
	}
	if s.CmdOverhead >= o.CmdOverhead {
		t.Error("S830 should have a faster controller than OpenSSD")
	}
	if s.Nand.ProgLatency >= o.Nand.ProgLatency {
		t.Error("S830 should have a faster program path")
	}
	if s.Channels <= o.Channels {
		t.Error("S830 should expose more parallelism")
	}
}

func TestBaselineReadWrite(t *testing.T) {
	d := newDev(t, false)
	if d.Transactional() {
		t.Fatal("baseline device claims to be transactional")
	}
	if err := d.Write(5, devPage(d, 0x33)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, d.PageSize())
	if err := d.Read(5, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x33 {
		t.Errorf("read = %x, want 0x33", buf[0])
	}
}

func TestBaselineRejectsTransactionalCommands(t *testing.T) {
	d := newDev(t, false)
	buf := make([]byte, d.PageSize())
	if err := d.WriteTx(1, 0, devPage(d, 1)); !errors.Is(err, ErrNotTransactional) {
		t.Errorf("WriteTx = %v, want ErrNotTransactional", err)
	}
	if err := d.ReadTx(1, 0, buf); !errors.Is(err, ErrNotTransactional) {
		t.Errorf("ReadTx = %v, want ErrNotTransactional", err)
	}
	if err := d.Commit(1); !errors.Is(err, ErrNotTransactional) {
		t.Errorf("Commit = %v, want ErrNotTransactional", err)
	}
	if err := d.Abort(1); !errors.Is(err, ErrNotTransactional) {
		t.Errorf("Abort = %v, want ErrNotTransactional", err)
	}
}

func TestTransactionalLifecycle(t *testing.T) {
	d := newDev(t, true)
	if err := d.WriteTx(7, 3, devPage(d, 1)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, d.PageSize())
	if err := d.Read(3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Error("uncommitted write visible to plain read")
	}
	if err := d.Commit(7); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Error("committed write not visible")
	}
}

func TestCommandLatencyCharged(t *testing.T) {
	clk := simclock.New()
	d, err := New(smallProfile(), clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Profile()
	before := clk.Now()
	if err := d.Write(0, devPage(d, 1)); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now() - before
	want := p.CmdOverhead + p.TransferPerPage + p.Nand.ProgLatency
	if elapsed != want {
		t.Errorf("write cost %v, want %v", elapsed, want)
	}
	before = clk.Now()
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}
	if got := clk.Now() - before; got < p.BarrierOverhead {
		t.Errorf("barrier cost %v, want >= %v", got, p.BarrierOverhead)
	}
}

func TestBarrierDurability(t *testing.T) {
	d := newDev(t, false)
	if err := d.Write(9, devPage(d, 0x44)); err != nil {
		t.Fatal(err)
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}
	d.PowerCut()
	if err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, d.PageSize())
	if err := d.Read(9, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x44 {
		t.Errorf("post-restart read = %x, want 0x44", buf[0])
	}
}

func TestTransactionalCrashAtomicity(t *testing.T) {
	d := newDev(t, true)
	for l := int64(0); l < 3; l++ {
		if err := d.WriteTx(1, l, devPage(d, 9)); err != nil {
			t.Fatal(err)
		}
	}
	d.PowerCut()
	if err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, d.PageSize())
	for l := int64(0); l < 3; l++ {
		if err := d.Read(l, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0 {
			t.Errorf("page %d shows uncommitted data after crash", l)
		}
	}
}

func TestTrim(t *testing.T) {
	d := newDev(t, true)
	if err := d.Write(2, devPage(d, 5)); err != nil {
		t.Fatal(err)
	}
	if err := d.Trim(2); err != nil {
		t.Fatal(err)
	}
	buf := devPage(d, 0xFF)
	if err := d.Read(2, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Error("trimmed page still returns data")
	}
}

func TestCommandCounting(t *testing.T) {
	d := newDev(t, false)
	n0 := d.Commands()
	_ = d.Write(0, devPage(d, 1))
	_ = d.Read(0, make([]byte, d.PageSize()))
	_ = d.Barrier()
	if got := d.Commands() - n0; got != 3 {
		t.Errorf("commands = %d, want 3", got)
	}
}

func TestS830IsFasterEndToEnd(t *testing.T) {
	run := func(p Profile) time.Duration {
		p.Nand.Blocks = 32
		p.Nand.PagesPerBlock = 16
		p.Nand.PageSize = 512
		clk := simclock.New()
		d, err := New(p, clk, Options{})
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, d.PageSize())
		for i := int64(0); i < 50; i++ {
			if err := d.Write(i, data); err != nil {
				t.Fatal(err)
			}
			if i%5 == 0 {
				if err := d.Barrier(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return clk.Now()
	}
	if open, s830 := run(OpenSSD()), run(S830()); s830 >= open {
		t.Errorf("S830 (%v) should beat OpenSSD (%v) on the same workload", s830, open)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	// The queue makes the device safe for concurrent use: parallel
	// writers to disjoint LPNs must all land, and the counters must
	// account every command.
	d := newDev(t, false)
	const workers, per = 4, 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lpn := int64(w*per + i)
				if err := d.Write(lpn, devPage(d, byte(w+1))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	d.Queue().Drain()
	buf := make([]byte, d.PageSize())
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			if err := d.Read(int64(w*per+i), buf); err != nil {
				t.Fatal(err)
			}
			if buf[0] != byte(w+1) {
				t.Fatalf("lpn %d = %x, want %x", w*per+i, buf[0], w+1)
			}
		}
	}
	if got := d.Commands(); got < workers*per {
		t.Errorf("Commands() = %d, want >= %d", got, workers*per)
	}
}

func TestHealthReporting(t *testing.T) {
	d := newDev(t, false)
	h := d.Health()
	if h.State != Healthy {
		t.Fatalf("fresh device health = %v, want healthy", h)
	}
	if h.SpareBlocks <= 0 {
		t.Fatalf("SpareBlocks = %d, want > 0", h.SpareBlocks)
	}
	if h.RetiredBlocks != 0 {
		t.Fatalf("RetiredBlocks = %d on fresh device", h.RetiredBlocks)
	}
	if got := h.String(); got == "" {
		t.Fatal("Health.String empty")
	}
}

func TestRecoveryModeSurfaced(t *testing.T) {
	d := newDev(t, true)
	if err := d.WriteTx(1, 3, devPage(d, 0xA1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(1); err != nil {
		t.Fatal(err)
	}
	d.PowerCut()
	if err := d.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if ri := d.LastRecovery(); ri.Mode != ftl.RecoveryImage {
		t.Fatalf("clean crash recovery mode = %v, want image", ri.Mode)
	}

	// Destroy every copy of the mapping image: the next mount must take
	// the full-device scan path and still serve committed data.
	d.PowerCut()
	if n, err := d.CorruptMeta("map", true); err != nil || n == 0 {
		t.Fatalf("CorruptMeta(map) = %d, %v", n, err)
	}
	if err := d.Restart(); err != nil {
		t.Fatalf("Restart after corruption: %v", err)
	}
	ri := d.LastRecovery()
	if ri.Mode != ftl.RecoveryScan {
		t.Fatalf("recovery mode = %v, want scan (reason %q)", ri.Mode, ri.Reason)
	}
	if ri.ScanPages == 0 || ri.Duration <= 0 {
		t.Fatalf("scan recovery info incomplete: %+v", ri)
	}
	buf := make([]byte, d.PageSize())
	if err := d.Read(3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xA1 {
		t.Fatalf("committed data lost across scan recovery: %x", buf[0])
	}
}

func TestCorruptMetaUnknownSlot(t *testing.T) {
	d := newDev(t, false)
	d.PowerCut()
	if _, err := d.CorruptMeta("no-such-slot", false); err == nil {
		t.Fatal("CorruptMeta on unknown slot should error")
	}
}
