// TPC-C: load a small TPC-C database and run the paper's
// write-intensive mix (Table 3) under WAL and X-FTL, reporting
// transactions per simulated minute — the Table 4 experiment in
// miniature.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload/tpcc"
)

func main() {
	scale := tpcc.Scale{
		Warehouses:           2,
		Items:                500,
		StockPerWarehouse:    500,
		DistrictsPerWH:       5,
		CustomersPerDistrict: 50,
		OrdersPerDistrict:    50,
	}
	const txns = 150

	fmt.Printf("TPC-C write-intensive mix, %d warehouses, %d transactions\n\n",
		scale.Warehouses, txns)
	for _, mode := range []xftl.Mode{xftl.ModeWAL, xftl.ModeXFTL} {
		st, err := xftl.NewStack(xftl.OpenSSD(), mode)
		if err != nil {
			log.Fatal(err)
		}
		db, err := st.OpenDB("tpcc.db")
		if err != nil {
			log.Fatal(err)
		}
		b := tpcc.New(db, scale, 42)
		if err := b.Load(); err != nil {
			log.Fatalf("load: %v", err)
		}
		start := st.Clock.Now()
		res, err := b.Run(tpcc.WriteIntensive, txns)
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		elapsed := st.Clock.Now() - start
		fmt.Printf("%-6s %4d txns in %8.2fs simulated -> %6.0f txns/min\n",
			mode, res.Completed, elapsed.Seconds(),
			float64(res.Completed)/elapsed.Minutes())
		_ = db.Close()
	}
	fmt.Println("\nthe paper's Table 4 reports 251 (WAL) vs 582 (X-FTL) tpmC for this mix")
}
