// fsjournal: the file-system story of the paper (§6.3.4) — a journaling
// file system on X-FTL can turn journaling off and keep full-journaling
// consistency at below ordered-journaling cost. This example writes the
// same random-update workload under the three configurations, compares
// IOPS, and then demonstrates the consistency half of the claim with a
// torn multi-page file update across a power cut.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/simfs"
	"repro/internal/storage"
)

func main() {
	fmt.Println("random 8 KB writes, fsync every 5 pages, OpenSSD:")
	for _, mode := range []bench.FSMode{bench.FSOrdered, bench.FSFull, bench.FSXFTL} {
		pt, err := bench.RunFioPoint(storage.OpenSSD(), mode, 5, 1, bench.Options{Quick: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %6.0f IOPS\n", mode, pt.IOPS)
	}

	fmt.Println("\natomic multi-page file update across a power cut (X-FTL, journaling off):")
	dev, err := storage.New(storage.OpenSSD(), simclock.New(), storage.Options{Transactional: true})
	if err != nil {
		log.Fatal(err)
	}
	fsys, err := simfs.New(dev, simfs.Config{Mode: simfs.OffXFTL}, &metrics.HostCounters{})
	if err != nil {
		log.Fatal(err)
	}
	f, err := fsys.Create("state.bin", simfs.RoleOther)
	if err != nil {
		log.Fatal(err)
	}
	page := make([]byte, fsys.PageSize())
	for i := range page {
		page[i] = 'A'
	}
	for i := int64(0); i < 8; i++ {
		if err := f.WritePage(i, page); err != nil {
			log.Fatal(err)
		}
	}
	if err := f.Fsync(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  version A durable (8 pages)")

	// Overwrite all eight pages with version B, crash before fsync
	// completes its commit: with journaling off on an ordinary disk
	// this could tear; on X-FTL it is all-or-nothing.
	for i := range page {
		page[i] = 'B'
	}
	for i := int64(0); i < 8; i++ {
		if err := f.WritePage(i, page); err != nil {
			log.Fatal(err)
		}
	}
	fsys.PowerCut()
	fmt.Println("  -- power cut while version B was being written --")
	if err := fsys.Remount(); err != nil {
		log.Fatal(err)
	}
	g, err := fsys.Open("state.bin")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, fsys.PageSize())
	versions := map[byte]int{}
	for i := int64(0); i < 8; i++ {
		if err := g.ReadPage(i, buf); err != nil {
			log.Fatal(err)
		}
		versions[buf[0]]++
	}
	fmt.Printf("  after recovery: %d pages of version A, %d of version B", versions['A'], versions['B'])
	if versions['A'] == 8 || versions['B'] == 8 {
		fmt.Println("  -> atomic, no torn state")
	} else {
		fmt.Println("  -> TORN (this should not happen)")
	}
}
