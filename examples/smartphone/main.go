// Smartphone: replay a Gmail-like application trace (the paper's
// motivating workload, §6.3.2) under WAL and under X-FTL, and compare
// elapsed simulated time and I/O counts — the Figure 7 experiment in
// miniature.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload/android"
)

func main() {
	const trace = "Gmail"
	const scale = 0.1 // 10% of the paper's Table 2 statement census

	fmt.Printf("replaying the %s trace at scale %.0f%%\n\n", trace, scale*100)
	for _, mode := range []xftl.Mode{xftl.ModeWAL, xftl.ModeXFTL} {
		elapsed, writes, fsyncs := replay(trace, scale, mode)
		fmt.Printf("%-6s elapsed %8.2fs  host page writes %6d  fsyncs %5d\n",
			mode, elapsed, writes, fsyncs)
	}
	fmt.Println("\nthe paper's Figure 7 reports X-FTL 2.4x-3.0x faster than WAL on these traces")
}

func replay(trace string, scale float64, mode xftl.Mode) (sec float64, writes, fsyncs int64) {
	tr, err := android.Generate(trace, scale, 7)
	if err != nil {
		log.Fatal(err)
	}
	st, err := xftl.NewStack(xftl.OpenSSD(), mode)
	if err != nil {
		log.Fatal(err)
	}
	dbs := make([]*xftl.DB, tr.Counts.Files)
	for i := range dbs {
		db, err := st.OpenDB(fmt.Sprintf("app-%d.db", i))
		if err != nil {
			log.Fatal(err)
		}
		dbs[i] = db
	}
	for _, op := range tr.Schema {
		if _, err := dbs[op.DB].Exec(op.SQL, op.Args...); err != nil {
			log.Fatalf("schema: %v", err)
		}
	}
	st.Host.Reset()
	start := st.Clock.Now()
	for _, txn := range tr.Txns {
		db := dbs[txn.DB]
		if len(txn.Ops) > 1 {
			if err := db.Begin(); err != nil {
				log.Fatal(err)
			}
		}
		for _, op := range txn.Ops {
			if _, err := db.Exec(op.SQL, op.Args...); err != nil {
				log.Fatalf("replay: %v", err)
			}
		}
		if len(txn.Ops) > 1 {
			if err := db.Commit(); err != nil {
				log.Fatal(err)
			}
		}
	}
	h := st.Host.Snapshot()
	return (st.Clock.Now() - start).Seconds(), h.TotalWrites(), h.Fsyncs
}
