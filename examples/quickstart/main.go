// Quickstart: open a database on an X-FTL device, run CRUD through the
// SQL API, and demonstrate the headline property — a multi-page
// transaction survives (or vanishes atomically at) a power cut with no
// journal anywhere in the stack.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Assemble the full simulated stack: NAND chips, X-FTL, the SATA
	// command layer, the file system in passthrough mode, and a SQLite
	// engine with journaling off.
	st, err := xftl.NewStack(xftl.OpenSSD(), xftl.ModeXFTL)
	if err != nil {
		log.Fatal(err)
	}
	db, err := st.OpenDB("app.db")
	if err != nil {
		log.Fatal(err)
	}

	must := func(_ int64, err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(db.Exec(`CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner TEXT, balance REAL)`))
	must(db.Exec(`INSERT INTO accounts VALUES (1, 'alice', 100.0), (2, 'bob', 50.0)`))

	// A committed multi-page transaction: atomic transfer.
	if err := db.Begin(); err != nil {
		log.Fatal(err)
	}
	must(db.Exec(`UPDATE accounts SET balance = balance - 30 WHERE id = 1`))
	must(db.Exec(`UPDATE accounts SET balance = balance + 30 WHERE id = 2`))
	if err := db.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after committed transfer (simulated I/O so far: %v)\n", st.Elapsed())
	printAccounts(db)

	// An uncommitted transaction interrupted by a power cut: the
	// device's X-L2P table rolls it back — no rollback journal, no WAL.
	if err := db.Begin(); err != nil {
		log.Fatal(err)
	}
	must(db.Exec(`UPDATE accounts SET balance = 0 WHERE id = 1`))
	must(db.Exec(`UPDATE accounts SET balance = 0 WHERE id = 2`))
	fmt.Println("\n-- power cut mid-transaction --")
	st.PowerCut()
	if err := st.Remount(); err != nil {
		log.Fatal(err)
	}
	db2, err := st.OpenDB("app.db")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after crash recovery (all-or-nothing, courtesy of X-FTL):")
	printAccounts(db2)
}

func printAccounts(db *xftl.DB) {
	rows, err := db.Query(`SELECT id, owner, balance FROM accounts ORDER BY id`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows.Data {
		fmt.Printf("  account %d (%s): %.2f\n", r[0].Int(), r[1].Text(), r[2].Real())
	}
}
