package xftl_test

import (
	"runtime"
	"testing"

	"repro"
	"repro/internal/ncq"
)

// TestStackClose pins the graceful-shutdown contract: Close drains
// every in-flight NCQ command to completion (advancing virtual time to
// the last retire), leaves no goroutines behind (the stack owns none —
// all simulation is synchronous in virtual time), and a second Close is
// a no-op.
func TestStackClose(t *testing.T) {
	before := runtime.NumGoroutine()
	st, err := xftl.NewStack(xftl.OpenSSD(), xftl.ModeXFTL)
	if err != nil {
		t.Fatal(err)
	}
	q := st.Device.Queue()
	pageSize := st.Device.Profile().Nand.PageSize

	// Fill the queue with asynchronous writes: submitted and issued, but
	// their completions are not yet visible in virtual time.
	for i := int64(0); i < 16; i++ {
		if err := q.Submit(&ncq.Request{Op: ncq.OpWrite, LPN: i, Data: make([]byte, pageSize)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if q.InFlight() == 0 {
		t.Fatal("no commands in flight before close")
	}
	elapsed := st.Elapsed()

	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !st.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if got := q.InFlight(); got != 0 {
		t.Fatalf("Close left %d commands in flight", got)
	}
	if st.Elapsed() <= elapsed {
		t.Fatal("drain did not advance virtual time to the last completion")
	}

	// Second close: no-op, no error, clock untouched.
	drained := st.Elapsed()
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if st.Elapsed() != drained {
		t.Fatal("second Close advanced the clock")
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("stack leaked %d goroutines", after-before)
	}
}

func TestStackModes(t *testing.T) {
	for _, mode := range modes() {
		t.Run(mode.String(), func(t *testing.T) {
			st, err := xftl.NewStack(xftl.OpenSSD(), mode)
			if err != nil {
				t.Fatal(err)
			}
			if (mode == xftl.ModeXFTL) != st.Device.Transactional() {
				t.Errorf("mode %s: transactional device = %v", mode, st.Device.Transactional())
			}
			db, err := st.OpenDB("t.db")
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec(`INSERT INTO t VALUES (1, 'x')`); err != nil {
				t.Fatal(err)
			}
			row, ok, err := db.QueryRow(`SELECT v FROM t WHERE id = 1`)
			if err != nil || !ok || row[0].Text() != "x" {
				t.Fatalf("row = %v ok=%v err=%v", row, ok, err)
			}
			if st.Elapsed() == 0 {
				t.Error("no simulated time elapsed despite I/O")
			}
		})
	}
}

func TestStackCrashRecovery(t *testing.T) {
	st, err := xftl.NewStack(xftl.OpenSSD(), xftl.ModeXFTL)
	if err != nil {
		t.Fatal(err)
	}
	db, err := st.OpenDB("t.db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`UPDATE t SET v = 99 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	st.PowerCut()
	if err := st.Remount(); err != nil {
		t.Fatal(err)
	}
	db2, err := st.OpenDB("t.db")
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	row, _, err := db2.QueryRow(`SELECT v FROM t WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int() != 10 {
		t.Errorf("v = %d after crash, want 10", row[0].Int())
	}
}

func TestModeIOCharacter(t *testing.T) {
	// The facade should surface the paper's I/O signature: X-FTL mode
	// issues no journal writes and fewer fsyncs than rollback mode.
	counts := map[xftl.Mode]struct {
		journal int64
		fsyncs  int64
	}{}
	for _, mode := range modes() {
		st, err := xftl.NewStack(xftl.OpenSSD(), mode)
		if err != nil {
			t.Fatal(err)
		}
		db, err := st.OpenDB("t.db")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
			t.Fatal(err)
		}
		st.Host.Reset()
		for i := 1; i <= 10; i++ {
			if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`, i, i); err != nil {
				t.Fatal(err)
			}
		}
		s := st.Host.Snapshot()
		counts[mode] = struct {
			journal int64
			fsyncs  int64
		}{s.JournalWrites, s.Fsyncs}
		_ = db.Close()
	}
	if counts[xftl.ModeXFTL].journal != 0 {
		t.Errorf("X-FTL mode wrote %d journal pages", counts[xftl.ModeXFTL].journal)
	}
	if counts[xftl.ModeRollback].journal == 0 {
		t.Error("rollback mode wrote no journal pages")
	}
	if !(counts[xftl.ModeRollback].fsyncs > counts[xftl.ModeXFTL].fsyncs) {
		t.Errorf("fsyncs: rbj=%d xftl=%d", counts[xftl.ModeRollback].fsyncs, counts[xftl.ModeXFTL].fsyncs)
	}
}
