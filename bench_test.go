package xftl_test

// One testing.B benchmark per table and figure of the paper's
// evaluation. Each benchmark drives the same code path as the
// corresponding xftlbench experiment at a reduced size and reports the
// simulated I/O time per unit of work as a custom metric
// (sim-ms/op), alongside Go's own wall-clock numbers. The full-size
// regeneration lives in cmd/xftlbench; EXPERIMENTS.md records its
// output.

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/bench"
	"repro/internal/storage"
	"repro/internal/workload/android"
	"repro/internal/workload/fio"
	"repro/internal/workload/synth"
	"repro/internal/workload/tpcc"
)

var quick = bench.Options{Quick: true}

func modes() []xftl.Mode {
	return []xftl.Mode{xftl.ModeRollback, xftl.ModeWAL, xftl.ModeXFTL}
}

// BenchmarkFig5 measures synthetic update transactions per mode
// (Figure 5's midline point: 5 updates/txn, ~50% GC validity).
func BenchmarkFig5(b *testing.B) {
	for _, mode := range modes() {
		b.Run(mode.String(), func(b *testing.B) {
			run, err := bench.RunSynth(mode, 0.5, 5, max(b.N, 20), quick)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(run.Elapsed.Seconds()*1000/float64(run.Transactions), "sim-ms/txn")
			b.ReportMetric(float64(run.Flash.PageWrites)/float64(run.Transactions), "flash-writes/txn")
		})
	}
}

// BenchmarkTable1 captures the I/O-count profile at the Table 1 point.
func BenchmarkTable1(b *testing.B) {
	for _, mode := range modes() {
		b.Run(mode.String(), func(b *testing.B) {
			run, err := bench.RunSynth(mode, 0.5, 5, max(b.N, 20), quick)
			if err != nil {
				b.Fatal(err)
			}
			n := float64(run.Transactions)
			b.ReportMetric(float64(run.Host.TotalWrites())/n, "host-writes/txn")
			b.ReportMetric(float64(run.Host.Fsyncs)/n, "fsyncs/txn")
		})
	}
}

// BenchmarkFig6 captures FTL-internal activity versus GC validity.
func BenchmarkFig6(b *testing.B) {
	for _, v := range []float64{0.3, 0.7} {
		b.Run(fmt.Sprintf("validity-%.0f%%", v*100), func(b *testing.B) {
			run, err := bench.RunSynth(xftl.ModeXFTL, v, 5, max(b.N, 20), quick)
			if err != nil {
				b.Fatal(err)
			}
			n := float64(run.Transactions)
			b.ReportMetric(float64(run.Flash.PageWrites)/n, "flash-writes/txn")
			b.ReportMetric(float64(run.Flash.GCRuns)/n, "gc/txn")
		})
	}
}

// BenchmarkFig7 replays each Android trace (Figure 7 / Table 2).
func BenchmarkFig7(b *testing.B) {
	for _, trace := range android.Names() {
		for _, mode := range []xftl.Mode{xftl.ModeWAL, xftl.ModeXFTL} {
			b.Run(trace+"/"+mode.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					run, err := bench.ReplayTrace(trace, mode, 0.02, quick)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(run.Elapsed.Seconds()*1000/float64(run.Txns), "sim-ms/txn")
				}
			})
		}
	}
}

// BenchmarkTable4 runs the TPC-C write-intensive mix (Table 4).
func BenchmarkTable4(b *testing.B) {
	for _, mode := range []xftl.Mode{xftl.ModeWAL, xftl.ModeXFTL} {
		b.Run(mode.String(), func(b *testing.B) {
			st, err := xftl.NewStack(xftl.OpenSSD(), mode)
			if err != nil {
				b.Fatal(err)
			}
			db, err := st.OpenDB("tpcc.db")
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			tp := tpcc.New(db, tpcc.Scale{
				Warehouses: 2, Items: 300, StockPerWarehouse: 300,
				DistrictsPerWH: 4, CustomersPerDistrict: 30, OrdersPerDistrict: 30,
			}, 1)
			if err := tp.Load(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := st.Clock.Now()
			res, err := tp.Run(tpcc.WriteIntensive, max(b.N, 20))
			if err != nil {
				b.Fatal(err)
			}
			elapsed := st.Clock.Now() - start
			b.ReportMetric(float64(res.Completed)/elapsed.Minutes(), "sim-txn/min")
		})
	}
}

// BenchmarkFig8 measures the FIO sweep midpoint per fs mode (Figure 8).
func BenchmarkFig8(b *testing.B) {
	for _, mode := range []bench.FSMode{bench.FSOrdered, bench.FSFull, bench.FSXFTL} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt, err := bench.RunFioPoint(storage.OpenSSD(), mode, 5, 1, quick)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.IOPS, "sim-IOPS")
			}
		})
	}
}

// BenchmarkFig9 measures the 16-thread comparison (Figure 9).
func BenchmarkFig9(b *testing.B) {
	type cfg struct {
		name string
		prof storage.Profile
		mode bench.FSMode
	}
	for _, c := range []cfg{
		{"S830-ordered", storage.S830(), bench.FSOrdered},
		{"OpenSSD-XFTL", storage.OpenSSD(), bench.FSXFTL},
		{"S830-full", storage.S830(), bench.FSFull},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt, err := bench.RunFioPoint(c.prof, c.mode, 5, 16, quick)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.IOPS, "sim-IOPS")
			}
		})
	}
}

// BenchmarkTable5 measures crash-recovery time per mode (Table 5).
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := bench.RunTable5(quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range modes() {
			b.ReportMetric(float64(runs[mode].Restart.Microseconds())/1000,
				"sim-ms-restart-"+mode.String())
		}
	}
}

// BenchmarkEngine measures raw engine operation cost (wall clock),
// independent of the simulated device: how expensive this SQLite
// implementation itself is.
func BenchmarkEngine(b *testing.B) {
	st, err := xftl.NewStack(xftl.OpenSSD(), xftl.ModeXFTL)
	if err != nil {
		b.Fatal(err)
	}
	db, err := st.OpenDB("engine.db")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	cfg := synth.DefaultConfig()
	cfg.Tuples = 5000
	if err := synth.Load(db, cfg); err != nil {
		b.Fatal(err)
	}
	sel, err := db.Prepare(`SELECT ps_supplycost FROM partsupp WHERE ps_partkey = ?`)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("PointSelect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sel.Query(i%cfg.Tuples + 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	upd, err := db.Prepare(`UPDATE partsupp SET ps_availqty = ? WHERE ps_partkey = ?`)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("UpdateTxn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := upd.Exec(i, i%cfg.Tuples+1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFioRaw exercises the fio workload package directly.
func BenchmarkFioRaw(b *testing.B) {
	st, err := xftl.NewStack(xftl.OpenSSD(), xftl.ModeXFTL)
	if err != nil {
		b.Fatal(err)
	}
	cfg := fio.DefaultConfig()
	cfg.FilePages = 2048
	cfg.Duration = 2e9
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := fio.Run(st.FS, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
